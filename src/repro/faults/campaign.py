"""Reproducible fault-injection campaigns with containment scoring.

A campaign boots one FlexOS instance, generates a :class:`FaultPlan` from
``(seed, config)``, injects every planned fault through the real gate /
allocator / device machinery, and emits one structured
:class:`FaultRecord` per injection.  Replaying the same
:class:`CampaignConfig` yields byte-identical records
(:meth:`CampaignResult.to_text`), which is what lets the containment
scorecard compare backends on *exactly* the same fault load.

Outcome model per fault:

* **detected** — the fault surfaced as an exception (hardware protection
  fault, software OOM, transport loss noticed by the probe).
* **contained** — the fault did not let one compartment read or corrupt
  another's private data, and the instance kept serving afterwards.
* **leaked** — the injected access silently succeeded: the backend let a
  compartment read/tamper data it does not own (the ``none`` backend's
  fate for every cross-compartment fault).
* **recovered** — a supervision policy (retry/restart/degrade) turned the
  fault into a completed or gracefully-failed call.
"""

from __future__ import annotations

from repro.core.config import CompartmentSpec, SafetyConfig
from repro.core.toolchain.build import build_image
from repro.core.vm import FlexOSInstance, Machine
from repro.errors import (
    AllocationError,
    CompartmentFault,
    ConfigError,
    DegradedService,
    ProtectionFault,
    ReproError,
    TransientFault,
)
from repro.faults.injector import (
    CROSS_COMPARTMENT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from repro.kernel.lib import entrypoint, work
from repro.kernel.net.device import LinkedDevices

#: The libraries campaigns isolate, one compartment each: the TCP/IP
#: stack (the paper's canonical victim) and the Redis application.
CAMPAIGN_LIBRARIES = ("lwip", "redis")

#: Kinds a default campaign cycles through.  ``rpc-drop`` is excluded so
#: the same plan is meaningful on every backend (a dropped descriptor
#: has no analogue on a same-address-space gate).
DEFAULT_CAMPAIGN_KINDS = (
    "stray-read",
    "stray-write",
    "corrupt-return",
    "alloc-oom",
    "net-drop",
    "net-dup",
)

_SECRET_VALUE = "app-session-token"


# -- campaign probes ----------------------------------------------------------
# Defined at module import time so build_image collects them as legal
# entry points (the EPT RPC server validates against that set).

@entrypoint("lwip")
def lwip_probe(token=0):
    """A well-behaved entry into the lwip compartment."""
    work(64.0)
    return 2 * token + 1


@entrypoint("lwip")
def lwip_alloc_probe(heap, size=64):
    """An lwip entry that allocates from its compartment heap."""
    work(32.0)
    allocation = heap.malloc(size)
    allocation.free()
    return size


@entrypoint("redis")
def redis_probe(token=0):
    """A well-behaved entry into the redis compartment."""
    work(64.0)
    return 2 * token + 2


@entrypoint("redis")
def redis_alloc_probe(heap, size=64):
    """A redis entry that allocates from its compartment heap."""
    work(32.0)
    allocation = heap.malloc(size)
    allocation.free()
    return size


_PLAIN_PROBES = {"lwip": lwip_probe, "redis": redis_probe}
_ALLOC_PROBES = {"lwip": lwip_alloc_probe, "redis": redis_alloc_probe}


class CampaignConfig:
    """Everything a campaign is determined by.

    Two campaigns with equal configs produce byte-identical records; the
    scorecard varies only ``mechanism``/``mpk_gate`` so every backend
    faces the same fault plan.
    """

    def __init__(self, mechanism="intel-mpk", mpk_gate="full",
                 policy="propagate", seed=1, n_faults=40, kinds=None,
                 isolate=CAMPAIGN_LIBRARIES):
        self.mechanism = mechanism
        self.mpk_gate = mpk_gate
        self.policy = policy
        self.seed = seed
        self.n_faults = n_faults
        self.kinds = tuple(kinds) if kinds else DEFAULT_CAMPAIGN_KINDS
        self.isolate = tuple(isolate)

    @property
    def name(self):
        backend = self.mechanism
        if self.mechanism == "intel-mpk":
            backend = "mpk-%s" % self.mpk_gate
        return "%s/%s" % (backend, self.policy)

    def describe(self):
        return ("campaign %s seed=%s faults=%d kinds=%s isolate=%s"
                % (self.name, self.seed, self.n_faults,
                   ",".join(self.kinds), ",".join(self.isolate)))

    def __repr__(self):
        return "CampaignConfig(%s)" % self.describe()


class FaultRecord:
    """One injected fault and its scored outcome."""

    __slots__ = ("index", "kind", "dst", "detected", "contained", "leaked",
                 "recovered", "cycles", "detail")

    def __init__(self, index, kind, dst, detected=False, contained=False,
                 leaked=False, recovered=False, cycles=0.0, detail=""):
        self.index = index
        self.kind = kind
        self.dst = dst
        self.detected = detected
        self.contained = contained
        self.leaked = leaked
        self.recovered = recovered
        #: Virtual cycles the instance spent injecting, detecting and
        #: handling this fault (including the post-fault health probe).
        #: Deterministic per config, so it is safe in the stable text.
        self.cycles = cycles
        self.detail = detail

    @property
    def cross_compartment(self):
        return self.kind in CROSS_COMPARTMENT_KINDS

    def line(self):
        return ("%03d %-14s dst=%-4s detected=%d contained=%d leaked=%d "
                "recovered=%d cycles=%-7d %s"
                % (self.index, self.kind, self.dst, int(self.detected),
                   int(self.contained), int(self.leaked),
                   int(self.recovered), round(self.cycles), self.detail))

    def __repr__(self):
        return "FaultRecord(%s)" % self.line()


class CampaignResult:
    """All records of one campaign plus aggregate accounting."""

    def __init__(self, config):
        self.config = config
        self.records = []
        #: SupervisionEvents of the run, in (compartment, timestamp)
        #: order — a total order independent of gate interleaving, so
        #: the rendered text is byte-identical across repeated runs.
        self.supervision = []

    def add(self, record):
        self.records.append(record)

    def __len__(self):
        return len(self.records)

    def counters(self):
        injected = len(self.records)
        xcomp = [r for r in self.records if r.cross_compartment]
        return {
            "injected": injected,
            "detected": sum(r.detected for r in self.records),
            "contained": sum(r.contained for r in self.records),
            "leaked": sum(r.leaked for r in self.records),
            "recovered": sum(r.recovered for r in self.records),
            "xcomp_injected": len(xcomp),
            "xcomp_contained": sum(r.contained for r in xcomp),
            "xcomp_leaked": sum(r.leaked for r in xcomp),
        }

    def mean_cycles_per_fault(self):
        """Average virtual cycles spent per injected fault."""
        if not self.records:
            return 0.0
        return sum(r.cycles for r in self.records) / len(self.records)

    def containment_rate(self):
        """Fraction of cross-compartment faults that stayed contained."""
        counts = self.counters()
        if not counts["xcomp_injected"]:
            return 1.0
        return counts["xcomp_contained"] / counts["xcomp_injected"]

    def to_text(self):
        """Stable, byte-identical-per-config serialization."""
        lines = [self.config.describe()]
        lines += [record.line() for record in self.records]
        if self.supervision:
            lines.append("supervision:")
            lines += ["  " + event.line() for event in self.supervision]
        counts = self.counters()
        lines.append(
            "totals injected=%(injected)d detected=%(detected)d "
            "contained=%(contained)d leaked=%(leaked)d "
            "recovered=%(recovered)d" % counts
        )
        lines.append(
            "cross-compartment injected=%(xcomp_injected)d "
            "contained=%(xcomp_contained)d leaked=%(xcomp_leaked)d" % counts
        )
        return "\n".join(lines)

    def summary_line(self):
        counts = self.counters()
        return ("%-16s injected=%3d detected=%3d contained=%3d leaked=%3d "
                "recovered=%3d containment=%5.1f%%"
                % (self.config.name, counts["injected"], counts["detected"],
                   counts["contained"], counts["leaked"],
                   counts["recovered"], 100.0 * self.containment_rate()))

    def __repr__(self):
        return "CampaignResult(%s, %d records)" % (
            self.config.name, len(self.records),
        )


# -- campaign execution --------------------------------------------------------

def build_campaign_config(config):
    """The SafetyConfig a campaign boots: one compartment per library."""
    specs = [CompartmentSpec("comp1", mechanism=config.mechanism,
                             default=True)]
    assignment = {}
    for i, library in enumerate(config.isolate):
        name = "comp%d" % (i + 2)
        specs.append(CompartmentSpec(name, mechanism=config.mechanism))
        assignment[library] = name
    return SafetyConfig(specs, assignment, sharing="dss",
                        mpk_gate=config.mpk_gate)


def boot_campaign_instance(config):
    """Boot an instance + device link for one campaign; returns both."""
    machine = Machine()
    link = LinkedDevices(machine.costs)
    instance = FlexOSInstance(
        build_image(build_campaign_config(config)), machine=machine,
        net_device=link.a,
    ).boot()
    return instance, link


def _prepare_injector(instance, config):
    """Attach an injector and point it at per-compartment victims."""
    injector = instance.attach_injector(FaultInjector())
    # The stray-access victim is the *default* compartment's private
    # data: a compromised isolated library reaching for application state.
    app_secret = instance.private_object("app", "app_secret",
                                         value=_SECRET_VALUE)
    for library in config.isolate:
        comp = instance.image.compartment_of(library)
        injector.victims[comp.index] = app_secret
        # The Iago return value points into the callee's own private data.
        injector.return_victims[comp.index] = instance.private_object(
            library, "%s_internal_state" % library,
            value="%s-private" % library,
        )
    return injector, app_secret


def _clean_probe(instance, library):
    """Verify the instance still serves well-formed calls."""
    try:
        return _PLAIN_PROBES[library](token=7) == (
            15 if library == "lwip" else 16
        )
    except ReproError:
        return False


def _library_of(instance, comp_index):
    for library in CAMPAIGN_LIBRARIES:
        if instance.image.compartment_of(library).index == comp_index:
            return library
    raise ConfigError("compartment %d hosts no campaign library"
                      % comp_index)


def _execute_gate_fault(instance, injector, spec, index):
    """Inject one gate-site fault and score its outcome."""
    library = _library_of(instance, spec.dst)
    record = FaultRecord(index, spec.kind, spec.dst)
    injector.arm(spec)
    events_before = len(injector.events)
    heap = instance.memmgr.heap_of(spec.dst)
    probe = (_ALLOC_PROBES[library] if spec.kind == "alloc-oom"
             else _PLAIN_PROBES[library])
    args = (heap,) if spec.kind == "alloc-oom" else ()
    try:
        value = probe(*args)
    except ProtectionFault as fault:
        record.detected = True
        record.detail = "caught %s at %r" % (
            type(fault).__name__, fault.symbol,
        )
    except AllocationError:
        record.detected = True
        record.detail = "caught AllocationError"
    except DegradedService as fault:
        record.detected = True
        record.recovered = True
        record.detail = "degraded (%s)" % type(fault.cause).__name__
    except CompartmentFault as fault:
        record.detected = True
        record.detail = "supervised %s" % type(fault.cause).__name__
    except TransientFault:
        record.detected = True
        record.detail = "caught TransientFault"
    else:
        record.detail = _score_completed_call(
            instance, injector, spec, record, value, events_before,
        )
    finally:
        injector.disarm()
        heap.fail_next(0)
    _finalize_record(instance, injector, library, record)
    return record


def _score_completed_call(instance, injector, spec, record, value,
                          events_before):
    """The probe returned: decide whether that means leak or recovery."""
    fired = len(injector.events) > events_before
    if not fired:
        return "spec did not fire"
    event = injector.events[-1]
    if spec.kind == "corrupt-return":
        # The caller now consumes the Iago reply with its own authority.
        try:
            leaked_value = value.read(instance.ctx)
        except ProtectionFault:
            record.detected = True
            return "corrupt return caught at caller dereference"
        except AttributeError:
            return "return value not corrupted"
        record.leaked = True
        return "caller read callee-private %r" % leaked_value
    if event.leaked:
        record.leaked = True
        return "%s silently succeeded" % spec.kind
    # The injected fault fired yet the call completed: a supervision
    # policy (retry/restart) absorbed it.
    record.detected = True
    record.recovered = True
    return "call replayed to completion"


def _finalize_record(instance, injector, library, record):
    """Containment = no leak + the instance still answers cleanly."""
    comp_index = instance.image.compartment_of(library).index
    app_secret = injector.victims.get(comp_index)
    if app_secret is not None \
            and app_secret.peek() != _SECRET_VALUE:
        record.leaked = True
        record.detail += "; app_secret tampered"
        app_secret._value = _SECRET_VALUE  # restore for the next fault
    record.contained = (not record.leaked) and _clean_probe(instance,
                                                            library)


def _execute_net_fault(instance, link, injector, spec, index):
    """Inject one link-level fault and score detection/recovery.

    The transmit side is the instance's own device (its driver lives in
    the lwip compartment, so the call still crosses the real gate); the
    fault is armed on the receiving peer.
    """
    record = FaultRecord(index, spec.kind, None)
    device, peer = link.a, link.b
    injector.inject_net(peer, spec.kind)
    frame = b"\x55" * 64
    rx_before = peer.rx_frames
    device.transmit(frame)
    delivered = peer.rx_frames - rx_before
    if spec.kind == "net-drop":
        if delivered == 0:
            # The missing frame is what the retransmission timer sees.
            record.detected = True
            device.transmit(frame)  # replay, as TCP would
            record.recovered = peer.rx_frames - rx_before == 1
            record.detail = "frame lost; retransmitted"
        else:
            record.detail = "drop did not fire"
    else:  # net-dup
        if delivered == 2:
            record.detected = True
            # The duplicate is discarded by sequence-number checks.
            peer.poll()
            record.recovered = True
            record.detail = "duplicate delivered; discarded by receiver"
        else:
            record.detail = "duplication did not fire"
    while peer.has_rx:
        peer.poll()
    record.contained = True  # link faults never cross protection domains
    return record


def run_campaign(config):
    """Run one campaign; returns a :class:`CampaignResult`."""
    instance, link = boot_campaign_instance(config)
    instance.supervisor.set_default_policy(config.policy)
    injector, _ = _prepare_injector(instance, config)
    targets = tuple(sorted(
        instance.image.compartment_of(lib).index for lib in config.isolate
    ))
    plan = FaultPlan(config.seed, config.n_faults, kinds=config.kinds,
                     targets=targets)
    result = CampaignResult(config)
    with instance.run():
        for index, spec in enumerate(plan):
            before = instance.clock.cycles
            if spec.kind in ("net-drop", "net-dup"):
                record = _execute_net_fault(instance, link, injector,
                                            spec, index)
            else:
                record = _execute_gate_fault(instance, injector, spec,
                                             index)
            record.cycles = instance.clock.cycles - before
            result.add(record)
    result.supervision = instance.supervisor.events_sorted()
    return result


def make_periodic_spec(kind, dst):
    """Convenience for application-level tests: one periodic FaultSpec."""
    return FaultSpec(kind, dst=dst)
