"""Deterministic, seeded fault injection at gate and subsystem boundaries.

A :class:`FaultPlan` is the reproducible unit: from ``(seed, n_faults,
kinds, targets)`` it pre-generates a fixed schedule of :class:`FaultSpec`
entries, so replaying a campaign with the same seed injects byte-identical
faults in byte-identical order.  The :class:`FaultInjector` executes the
specs: it is installed on the execution context
(:meth:`repro.core.vm.FlexOSInstance.attach_injector`) and consulted by
every gate crossing.

Fault kinds:

* ``stray-read`` / ``stray-write`` — while executing in the callee
  compartment, touch another compartment's private data.  Under MPK the
  callee's PKRU lacks the victim's key; under EPT the victim's pages are
  simply not mapped — both fault, which *is* the containment.  Under the
  ``none`` backend the access silently succeeds: the fault leaked.
* ``corrupt-return`` — Iago-style: the callee's reply is replaced with a
  pointer into the callee's own private memory.  The corruption only
  bites when the caller dereferences it — with the caller's authority —
  so MPK/EPT fault at the dereference, ``none`` leaks the private value.
* ``alloc-oom`` — arms the callee compartment heap's failure hook so its
  next allocation fails (software-detected on every backend).
* ``rpc-drop`` — the crossing's descriptor is lost; a transient
  :class:`~repro.errors.RpcDropFault` the ``retry`` policy can replay.
* ``net-drop`` / ``net-dup`` — lose or duplicate a frame in
  :class:`~repro.kernel.net.device.NetDevice` (executed by campaigns
  against a device pair, not at a gate crossing).
* ``reconfig-abort`` (:data:`MIGRATION_KIND`) — raise a
  :class:`~repro.errors.MigrationFault` at the N-th checkpoint of a live
  reconfiguration (:meth:`FaultInjector.arm_migration`), attacking the
  migration protocol itself.  Deliberately *not* part of
  :data:`FAULT_KINDS`: adding a kind there would reshuffle every
  existing seeded :class:`FaultPlan`.
"""

from __future__ import annotations

import random

from repro.errors import ConfigError, MigrationFault, RpcDropFault
from repro.obs import tracer as obs

#: Every fault kind the engine knows how to inject.
FAULT_KINDS = (
    "stray-read",
    "stray-write",
    "corrupt-return",
    "alloc-oom",
    "rpc-drop",
    "net-drop",
    "net-dup",
)

#: Kinds that model an isolation breach attempt: data of one compartment
#: touched with another compartment's authority.  The containment
#: scorecard's headline number is computed over exactly these.
CROSS_COMPARTMENT_KINDS = frozenset(
    ("stray-read", "stray-write", "corrupt-return")
)

#: Kinds the injector fires at a gate crossing (the rest are injected
#: directly into the subsystem concerned).
GATE_KINDS = frozenset(
    ("stray-read", "stray-write", "corrupt-return", "alloc-oom", "rpc-drop")
)

#: Marker value stray writes plant, so leaks are observable.
TAMPER_VALUE = "#tampered-by-fault-injector#"

#: The migration-window fault kind (kept out of FAULT_KINDS; see module
#: docstring).
MIGRATION_KIND = "reconfig-abort"


class FaultSpec:
    """One scheduled fault: what to inject and into which compartment."""

    __slots__ = ("kind", "dst")

    def __init__(self, kind, dst=None):
        if kind not in FAULT_KINDS:
            raise ConfigError(
                "unknown fault kind %r (have: %s)"
                % (kind, ", ".join(FAULT_KINDS))
            )
        self.kind = kind
        self.dst = dst

    def line(self):
        return "%s@comp%s" % (self.kind, self.dst)

    def __repr__(self):
        return "FaultSpec(%s)" % self.line()


class FaultPlan:
    """A seeded, reproducible schedule of fault injections.

    The schedule is fully determined by the constructor arguments; no
    runtime state feeds back into it, which is what makes campaigns
    replayable: ``FaultPlan(seed, n, kinds, targets)`` always yields the
    same spec sequence.
    """

    def __init__(self, seed, n_faults, kinds=None, targets=(1,)):
        if n_faults < 0:
            raise ConfigError("n_faults must be >= 0")
        kinds = tuple(kinds) if kinds else FAULT_KINDS
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ConfigError("unknown fault kind %r" % kind)
        targets = tuple(targets)
        if not targets:
            raise ConfigError("a fault plan needs at least one target")
        self.seed = seed
        self.n_faults = n_faults
        self.kinds = kinds
        self.targets = targets
        rng = random.Random(seed)
        self.specs = [
            FaultSpec(rng.choice(kinds), dst=rng.choice(targets))
            for _ in range(n_faults)
        ]

    def __iter__(self):
        return iter(self.specs)

    def __len__(self):
        return len(self.specs)

    def describe(self):
        """Stable text rendering (used by reproducibility tests)."""
        header = "plan seed=%s faults=%d kinds=%s targets=%s" % (
            self.seed, self.n_faults, ",".join(self.kinds),
            ",".join(str(t) for t in self.targets),
        )
        return "\n".join(
            [header] + ["%03d %s" % (i, spec.line())
                        for i, spec in enumerate(self.specs)]
        )

    def __repr__(self):
        return "FaultPlan(seed=%s, %d faults)" % (self.seed, len(self))


class InjectionEvent:
    """What actually happened when one spec fired."""

    __slots__ = ("kind", "dst", "raised", "leaked", "value", "detail")

    def __init__(self, kind, dst, raised=None, leaked=False, value=None,
                 detail=""):
        self.kind = kind
        self.dst = dst
        self.raised = raised      # exception type name, or None
        self.leaked = leaked      # the access silently succeeded
        self.value = value        # the leaked value, when it did
        self.detail = detail

    def __repr__(self):
        return "InjectionEvent(%s dst=%s raised=%s leaked=%s)" % (
            self.kind, self.dst, self.raised, self.leaked,
        )


class FaultInjector:
    """Executes fault specs at gate crossings and subsystem hooks.

    One-shot injection: :meth:`arm` queues a single spec that fires at
    the next crossing into its target compartment.  Periodic injection:
    :meth:`every` fires a spec each ``interval``-th crossing into the
    target — the shape application-level degrade tests use.

    Campaigns must tell the injector where the victims live:
    ``victims[dst]`` is a private object of *another* compartment for
    stray accesses performed while executing in ``dst``;
    ``return_victims[dst]`` is a private object *of* ``dst`` used as the
    corrupted return value.
    """

    def __init__(self, instance=None):
        self.instance = instance
        self.victims = {}          # dst comp index -> MemoryObject
        self.return_victims = {}   # dst comp index -> MemoryObject
        self.events = []
        self.injected = 0
        self._armed = None
        self._periodic = []        # [interval, spec, crossing counter]
        self._migration = None     # [fire_at index, checkpoint counter]
        self.migration_points = []  # (phase, step) checkpoints seen

    # -- scheduling -----------------------------------------------------------
    def arm(self, spec):
        """Queue ``spec`` to fire at the next crossing into its target."""
        if spec.kind not in GATE_KINDS:
            raise ConfigError(
                "%s faults are injected directly, not armed at gates"
                % spec.kind
            )
        self._armed = spec

    def disarm(self):
        self._armed = None

    def every(self, interval, spec):
        """Fire ``spec`` on every ``interval``-th crossing into its target."""
        if interval < 1:
            raise ConfigError("injection interval must be >= 1")
        if spec.kind not in GATE_KINDS:
            raise ConfigError(
                "%s faults are injected directly, not armed at gates"
                % spec.kind
            )
        self._periodic.append([interval, spec, 0])

    def arm_migration(self, fire_at):
        """Fault the ``fire_at``-th checkpoint of the next migration.

        Checkpoints are numbered across the whole protocol — prepare,
        quiesce, one per commit step, commit-finalize, resume (see
        :func:`repro.reconfig.engine.injection_points`) — so a seeded
        draw over ``range(injection_points(plan))`` attacks every phase.
        """
        if fire_at < 0:
            raise ConfigError("migration checkpoint index must be >= 0")
        self._migration = [int(fire_at), 0]

    def disarm_migration(self):
        self._migration = None

    def on_migration_point(self, phase, step=None):
        """Checkpoint hook called by the reconfiguration engine."""
        self.migration_points.append((phase, step))
        if self._migration is None:
            return
        fire_at, count = self._migration
        self._migration[1] = count + 1
        if count != fire_at:
            return
        self._migration = None
        self.injected += 1
        self.events.append(InjectionEvent(
            MIGRATION_KIND, None, raised="MigrationFault",
            detail="checkpoint %d: %s%s"
                   % (fire_at, phase, " (%s)" % step if step else ""),
        ))
        self._trace(MIGRATION_KIND, None, phase=phase, step=step)
        raise MigrationFault(phase, step)

    @property
    def last_event(self):
        return self.events[-1] if self.events else None

    def _trace(self, kind, dst, **args):
        """Mirror one injection into the active tracer (if any)."""
        tracer = obs.ACTIVE
        if tracer.enabled:
            tracer.fault("injected:%s" % kind, dst=dst, **args)

    def _take(self, gate):
        """The spec (if any) that should fire at this crossing."""
        spec = self._armed
        if spec is not None and (spec.dst is None
                                 or spec.dst == gate.dst.index):
            self._armed = None
            return spec
        for entry in self._periodic:
            interval, periodic_spec, count = entry
            if periodic_spec.dst is not None \
                    and periodic_spec.dst != gate.dst.index:
                continue
            entry[2] = count + 1
            if entry[2] % interval == 0:
                return periodic_spec
        return None

    # -- gate hooks -------------------------------------------------------------
    def on_gate_enter(self, gate, ctx):
        """Consulted after the domain switch, before the callee runs."""
        spec = self._take(gate)
        if spec is None or spec.kind == "corrupt-return":
            if spec is not None:
                # corrupt-return fires on the way out; re-arm it.
                self._armed = spec
            return
        if spec.kind in ("stray-read", "stray-write"):
            self._stray_access(spec, gate, ctx)
        elif spec.kind == "alloc-oom":
            self._arm_allocator(spec, gate)
        elif spec.kind == "rpc-drop":
            self._drop_rpc(spec, gate)

    def on_gate_return(self, gate, ctx, value):
        """Consulted on the way out; may replace the return value."""
        spec = self._armed
        if spec is None or spec.kind != "corrupt-return":
            return value
        if spec.dst is not None and spec.dst != gate.dst.index:
            return value
        self._armed = None
        victim = self.return_victims.get(gate.dst.index)
        if victim is None:
            return value
        self.injected += 1
        self.events.append(InjectionEvent(
            spec.kind, gate.dst.index,
            detail="return value replaced by pointer to %r" % victim.symbol,
        ))
        self._trace(spec.kind, gate.dst.index, symbol=victim.symbol)
        return victim

    # -- the individual injections ----------------------------------------------
    def _stray_access(self, spec, gate, ctx):
        victim = self.victims.get(gate.dst.index)
        if victim is None:
            return
        self.injected += 1
        event = InjectionEvent(spec.kind, gate.dst.index,
                               detail="touched %r" % victim.symbol)
        self.events.append(event)
        self._trace(spec.kind, gate.dst.index, symbol=victim.symbol)
        try:
            if spec.kind == "stray-read":
                event.value = victim.read(ctx)
            else:
                victim.write(ctx, TAMPER_VALUE)
                event.value = TAMPER_VALUE
        except Exception as exc:
            event.raised = type(exc).__name__
            raise
        # No fault fired: the backend let the access through.
        event.leaked = True

    def _arm_allocator(self, spec, gate):
        if self.instance is None:
            raise ConfigError(
                "alloc-oom injection needs an attached instance"
            )
        heap = self.instance.memmgr.heap_of(gate.dst.index)
        heap.fail_next(1)
        self.injected += 1
        self.events.append(InjectionEvent(
            spec.kind, gate.dst.index,
            detail="next allocation in %s fails" % heap.region.name,
        ))
        self._trace(spec.kind, gate.dst.index, region=heap.region.name)

    def _drop_rpc(self, spec, gate):
        self.injected += 1
        event = InjectionEvent(spec.kind, gate.dst.index,
                               raised="RpcDropFault",
                               detail="descriptor lost")
        self.events.append(event)
        self._trace(spec.kind, gate.dst.index, gate_kind=gate.kind)
        raise RpcDropFault(gate.kind, gate.dst.name)

    # -- direct (non-gate) injections --------------------------------------------
    def inject_net(self, device, kind):
        """Arm a one-shot frame drop or duplication on ``device``'s RX side."""
        if kind not in ("net-drop", "net-dup"):
            raise ConfigError("not a network fault kind: %r" % kind)
        fired = {"done": False}

        def once(frame_index):
            if fired["done"]:
                return False
            fired["done"] = True
            return True

        if kind == "net-drop":
            device.drop_fn = once
        else:
            device.dup_fn = once
        self.injected += 1
        self.events.append(InjectionEvent(
            kind, None, detail="armed on %s" % device.name,
        ))
        self._trace(kind, None, device=device.name)
        return fired

    def __repr__(self):
        return "FaultInjector(%d injected, %d events)" % (
            self.injected, len(self.events),
        )
