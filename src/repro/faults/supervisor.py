"""Per-compartment fault supervision and recovery policies.

CubicleOS and BULKHEAD both argue that compartmentalization is only
meaningful when paired with fault *handling*: detection alone tells you a
compartment crashed; a supervisor decides what happens next.  FlexOS's
gates give us a natural interposition point — every fault that escapes a
callee compartment unwinds through exactly one gate — so the supervisor
hangs off the execution context and is consulted from
:meth:`repro.core.gates.Gate.call`.

Policies (one per compartment, ``propagate`` by default):

* :class:`PropagatePolicy` — the pre-supervision behaviour: the raw fault
  unwinds to the caller.
* :class:`RetryPolicy` — bounded replay with linear backoff, for
  *transient* faults only (EPT RPC drops, allocator pressure).  A stray
  cross-compartment access is deterministic and is never retried.
* :class:`RestartPolicy` — reinitialise the compartment's heap (and any
  registered state handlers) and replay the call once, the CubicleOS-style
  "reboot the cubicle" recovery.
* :class:`DegradePolicy` — convert the fault into a
  :class:`~repro.errors.DegradedService` so the application answers with
  an app-level error (Redis ``-ERR``, Nginx 503, SQLite aborts the
  transaction) instead of dying.
* :class:`HardenPolicy` — harden-on-fault: handle each fault with an
  inner policy but count them, and after N contained faults queue the
  compartment for live migration to a stricter isolation layout
  (:mod:`repro.reconfig`).
"""

from __future__ import annotations

import random

from repro.errors import (
    AllocationError,
    ConfigError,
    TransientFault,
)
from repro.obs import tracer as obs

#: Cycles the supervisor itself burns classifying one fault (reading the
#: fault record, looking up the policy) — charged on every supervised fault.
SUPERVISOR_DISPATCH_CYCLES = 120.0


class Decision:
    """What the supervisor told the gate to do with one fault."""

    __slots__ = ("action", "wait_cycles", "note")

    def __init__(self, action, wait_cycles=0.0, note=""):
        if action not in ("propagate", "retry", "restart", "degrade"):
            raise ConfigError("unknown supervision action %r" % action)
        self.action = action
        self.wait_cycles = wait_cycles
        self.note = note

    def __repr__(self):
        return "Decision(%s%s)" % (
            self.action, ", wait=%.0f" % self.wait_cycles
            if self.wait_cycles else "",
        )


class SupervisionEvent:
    """One supervised fault, as recorded in the supervisor's log.

    Stamped with the virtual clock (``timestamp``) at decision time and
    the backoff the decision charged (``wait_cycles``): both are
    deterministic per (seed, config), so they are safe in stable text
    and give the scorecard a total sort order.
    """

    __slots__ = ("compartment", "compartment_name", "gate_kind",
                 "fault_type", "action", "attempt", "wait_cycles",
                 "timestamp")

    def __init__(self, compartment, compartment_name, gate_kind, fault_type,
                 action, attempt, wait_cycles=0.0, timestamp=0.0):
        self.compartment = compartment
        self.compartment_name = compartment_name
        self.gate_kind = gate_kind
        self.fault_type = fault_type
        self.action = action
        self.attempt = attempt
        self.wait_cycles = wait_cycles
        self.timestamp = timestamp

    def line(self):
        return ("comp%d(%s) %s via %s gate -> %s "
                "(attempt %d, wait=%.0f) @%.0fcyc") % (
            self.compartment, self.compartment_name, self.fault_type,
            self.gate_kind, self.action, self.attempt, self.wait_cycles,
            self.timestamp,
        )

    def __repr__(self):
        return "SupervisionEvent(%s)" % self.line()


class Policy:
    """Base recovery policy."""

    name = "abstract"

    def decide(self, fault, attempt, supervisor, comp_index):
        raise NotImplementedError

    def __repr__(self):
        return "%s()" % type(self).__name__


class PropagatePolicy(Policy):
    """Today's behaviour: the fault unwinds to the caller untouched."""

    name = "propagate"

    def decide(self, fault, attempt, supervisor, comp_index):
        return Decision("propagate")


class RetryPolicy(Policy):
    """Bounded replay with backoff for transient faults.

    Deterministic faults (a stray access will stray again) propagate
    immediately; only :class:`~repro.errors.TransientFault` and allocator
    OOM are worth replaying.

    ``backoff="linear"`` (the default) waits ``backoff_cycles * (n+1)``
    before attempt ``n+1``.  ``backoff="exp-jitter"`` waits
    ``backoff_cycles * 2**n`` scaled by a uniform [0.5, 1.0) factor
    drawn from a private :class:`random.Random` seeded with ``seed`` —
    retries de-synchronise (the thundering-herd argument) yet the whole
    sequence replays byte-identically for a given seed.
    """

    name = "retry"

    BACKOFFS = ("linear", "exp-jitter")

    def __init__(self, max_retries=3, backoff_cycles=400.0,
                 retry_on=(TransientFault, AllocationError),
                 backoff="linear", seed=0):
        if backoff not in self.BACKOFFS:
            raise ConfigError(
                "unknown backoff %r (have: %s)"
                % (backoff, ", ".join(self.BACKOFFS))
            )
        self.max_retries = max_retries
        self.backoff_cycles = backoff_cycles
        self.retry_on = tuple(retry_on)
        self.backoff = backoff
        self.seed = seed
        self._rng = random.Random(seed)

    def _wait_for(self, attempt):
        if self.backoff == "exp-jitter":
            return (self.backoff_cycles * (2 ** attempt)
                    * (0.5 + 0.5 * self._rng.random()))
        return self.backoff_cycles * (attempt + 1)

    def decide(self, fault, attempt, supervisor, comp_index):
        if attempt < self.max_retries and isinstance(fault, self.retry_on):
            return Decision(
                "retry", wait_cycles=self._wait_for(attempt),
                note="retry %d/%d" % (attempt + 1, self.max_retries),
            )
        return Decision("propagate", note="retries exhausted"
                        if attempt else "not transient")


class RestartPolicy(Policy):
    """Reinitialise the compartment and replay the call.

    The supervisor runs every restart handler registered for the
    compartment (the booted instance registers one that resets the
    compartment's heap; applications may add their own state resets),
    then the gate replays the call.  At most ``max_restarts`` per call.
    """

    name = "restart"

    def __init__(self, max_restarts=1, restart_cycles=5000.0):
        self.max_restarts = max_restarts
        #: Modelled cost of re-running the compartment's constructor.
        self.restart_cycles = restart_cycles

    def decide(self, fault, attempt, supervisor, comp_index):
        if attempt < self.max_restarts:
            supervisor.restart_compartment(comp_index)
            return Decision(
                "restart", wait_cycles=self.restart_cycles,
                note="restart %d/%d" % (attempt + 1, self.max_restarts),
            )
        return Decision("propagate", note="restarts exhausted")


class DegradePolicy(Policy):
    """Convert the fault into an application-visible degraded error."""

    name = "degrade"

    def decide(self, fault, attempt, supervisor, comp_index):
        return Decision("degrade")


class HardenPolicy(Policy):
    """Escalate a compartment to a stricter layout after N faults.

    Harden-on-fault: each individual fault is handled by the ``inner``
    policy (``degrade`` by default, so the application keeps serving);
    the policy merely *counts* contained faults per compartment — first
    attempts only, so one fault retried three times counts once — and
    after ``after`` of them queues the compartment on ``self.pending``
    and fires ``on_harden``.  Someone at gate_depth 0 (the
    reconfiguration driver, or the autotuner this feeds next) then
    migrates the instance one rung up the harden ladder
    (:data:`repro.reconfig.harden.HARDEN_LADDER`); the supervisor never
    migrates mid-unwind itself, because a migration cannot run inside
    the very gate crossing that faulted.
    """

    name = "harden"

    def __init__(self, after=3, inner="degrade", on_harden=None):
        if after < 1:
            raise ConfigError("harden threshold must be >= 1")
        self.after = after
        self.inner = make_policy(inner) if isinstance(inner, str) else inner
        self.on_harden = on_harden
        self.fault_counts = {}       # compartment index -> faults seen
        self.pending = []            # compartment indices due hardening

    def decide(self, fault, attempt, supervisor, comp_index):
        if attempt == 0:
            count = self.fault_counts.get(comp_index, 0) + 1
            self.fault_counts[comp_index] = count
            if count == self.after:
                self.pending.append(comp_index)
                if self.on_harden is not None:
                    self.on_harden(comp_index)
        decision = self.inner.decide(fault, attempt, supervisor, comp_index)
        if self.fault_counts.get(comp_index, 0) >= self.after:
            decision.note = ("%s; harden pending" % decision.note
                             if decision.note else "harden pending")
        return decision


_POLICY_FACTORIES = {
    "propagate": PropagatePolicy,
    "retry": RetryPolicy,
    "restart": RestartPolicy,
    "degrade": DegradePolicy,
    "harden": HardenPolicy,
}

POLICY_NAMES = tuple(sorted(_POLICY_FACTORIES))


def make_policy(name, **kwargs):
    """Instantiate the policy registered under ``name``."""
    factory = _POLICY_FACTORIES.get(name)
    if factory is None:
        raise ConfigError(
            "unknown recovery policy %r (have: %s)"
            % (name, ", ".join(POLICY_NAMES))
        )
    return factory(**kwargs)


class Supervisor:
    """Routes compartment faults to per-compartment recovery policies.

    Installed on the execution context by
    :meth:`repro.core.vm.FlexOSInstance.boot`; consulted by every gate
    whose callee raised.  Keeps a structured event log so campaigns and
    tests can audit exactly what was detected and how it was handled.
    """

    def __init__(self):
        self.default_policy = PropagatePolicy()
        self._policies = {}          # compartment index -> Policy
        self.events = []             # SupervisionEvent log
        self.restart_handlers = {}   # compartment index -> [callables]
        self.restarts = {}           # compartment index -> count

    # -- configuration --------------------------------------------------------
    def set_policy(self, comp_index, policy, **kwargs):
        """Install ``policy`` (a name or a Policy) for one compartment."""
        if isinstance(policy, str):
            policy = make_policy(policy, **kwargs)
        self._policies[comp_index] = policy
        return policy

    def set_default_policy(self, policy, **kwargs):
        """Install the policy used by compartments without their own."""
        if isinstance(policy, str):
            policy = make_policy(policy, **kwargs)
        self.default_policy = policy
        return policy

    def policy_for(self, comp_index):
        return self._policies.get(comp_index, self.default_policy)

    def add_restart_handler(self, comp_index, handler):
        """Register a callable run when ``comp_index`` is restarted."""
        self.restart_handlers.setdefault(comp_index, []).append(handler)

    # -- the supervision entry point -------------------------------------------
    def on_fault(self, ctx, gate, fault, attempt):
        """Decide what the gate should do with ``fault``; returns Decision."""
        comp = gate.dst
        ctx.clock.charge(SUPERVISOR_DISPATCH_CYCLES)
        decision = self.policy_for(comp.index).decide(
            fault, attempt, self, comp.index,
        )
        if decision.wait_cycles:
            ctx.clock.charge(decision.wait_cycles)
        self.events.append(SupervisionEvent(
            comp.index, comp.name, gate.kind, type(fault).__name__,
            decision.action, attempt,
            wait_cycles=decision.wait_cycles,
            timestamp=ctx.clock.cycles,
        ))
        tracer = obs.ACTIVE
        if tracer.enabled:
            tracer.supervision(
                comp.name, decision.action, type(fault).__name__, attempt,
                gate_kind=gate.kind, note=decision.note,
            )
        return decision

    def restart_compartment(self, comp_index):
        """Run the compartment's restart handlers (heap + state resets)."""
        for handler in self.restart_handlers.get(comp_index, ()):
            handler()
        self.restarts[comp_index] = self.restarts.get(comp_index, 0) + 1

    # -- introspection ----------------------------------------------------------
    def events_for(self, comp_index):
        return [e for e in self.events if e.compartment == comp_index]

    def events_sorted(self):
        """Events in (compartment, timestamp, attempt) order — the total
        order scorecard rows are rendered in, independent of the
        interleaving the run happened to produce."""
        return sorted(
            self.events,
            key=lambda e: (e.compartment, e.timestamp, e.attempt),
        )

    def __repr__(self):
        return "Supervisor(%d events, policies=%s)" % (
            len(self.events),
            {i: p.name for i, p in sorted(self._policies.items())}
            or self.default_policy.name,
        )
