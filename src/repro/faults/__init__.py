"""Fault injection, supervision and recovery.

The robustness subsystem: a seeded injection engine
(:mod:`repro.faults.injector`), per-compartment supervision with
pluggable recovery policies (:mod:`repro.faults.supervisor`), and
reproducible campaigns that score containment per isolation backend
(:mod:`repro.faults.campaign` — imported explicitly to keep this package
importable from :mod:`repro.core.vm` without a cycle).
"""

from repro.faults.injector import (
    CROSS_COMPARTMENT_KINDS,
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from repro.faults.supervisor import (
    POLICY_NAMES,
    DegradePolicy,
    PropagatePolicy,
    RestartPolicy,
    RetryPolicy,
    Supervisor,
    make_policy,
)

__all__ = [
    "CROSS_COMPARTMENT_KINDS",
    "DegradePolicy",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "POLICY_NAMES",
    "PropagatePolicy",
    "RestartPolicy",
    "RetryPolicy",
    "Supervisor",
    "make_policy",
]
