"""The crash-driven porting loop.

Given a workload and a way to share a named symbol, the workflow runs the
workload, catches each :class:`~repro.errors.ProtectionFault`, annotates
the faulting symbol into the build's whitelists, relocates the data into
the shared domain, and retries — until the workload runs clean or the
iteration budget is exhausted.  The resulting annotation count is the
"shared vars" column of Table 1.

A fault can also be a *genuine violation* — a library exposing internal
state it should not (the paper's ramfs/vfscore example).  Callers can
pass a ``deny`` predicate naming symbols that must never be shared; the
workflow then reports them instead of annotating.
"""

from __future__ import annotations

from repro.errors import ProtectionFault, ReproError


def render_crash_report(fault):
    """Render one :class:`~repro.errors.ProtectionFault` the way a real
    #PF handler dumps state: the faulting access plus the
    :class:`~repro.errors.FaultContext` captured by the MMU (gate depth,
    thread, PKRU contents / address space, virtual-clock time)."""
    lines = [
        "==== protection fault ====",
        "symbol:        %r" % fault.symbol,
        "access:        %s" % fault.access,
        "accessor:      comp%s%s" % (
            fault.accessor,
            " (%s)" % fault.library if fault.library else "",
        ),
        "owner:         comp%s%s" % (
            fault.owner,
            " (%s)" % fault.owner_library if fault.owner_library else "",
        ),
    ]
    if fault.context is not None:
        lines.append(fault.context.describe())
    return "\n".join(lines)


class PortingReport:
    """Outcome of one porting session."""

    def __init__(self):
        self.annotated = []     # symbols shared, in discovery order
        self.violations = []    # symbols refused by the deny predicate
        self.crash_reports = []  # rendered report per fault, in order
        self.iterations = 0
        self.clean = False

    @property
    def shared_vars(self):
        return len(self.annotated)

    def __repr__(self):
        return "PortingReport(%d shared vars, %d iterations, clean=%s)" % (
            self.shared_vars, self.iterations, self.clean,
        )


class PortingWorkflow:
    """Runs the run-crash-annotate loop for one instance."""

    def __init__(self, instance, max_iterations=200):
        self.instance = instance
        self.max_iterations = max_iterations

    def run(self, workload, share, deny=None):
        """Port until ``workload`` runs clean.

        Args:
            workload: callable() -> None; raises ProtectionFault while the
                port is incomplete.  Must be re-runnable.
            share: callable(fault) -> None; annotates + relocates the
                faulting symbol into the shared domain.
            deny: optional callable(fault) -> bool; True marks the fault a
                genuine violation that must not be fixed by sharing.

        Returns a :class:`PortingReport`.
        """
        report = PortingReport()
        annotations = self.instance.image.annotations
        for _ in range(self.max_iterations):
            report.iterations += 1
            try:
                workload()
            except ProtectionFault as fault:
                report.crash_reports.append(render_crash_report(fault))
                if deny is not None and deny(fault):
                    report.violations.append(fault.symbol)
                    raise ReproError(
                        "genuine violation: %r leaks internal state of "
                        "compartment %s; rework the library's API instead "
                        "of sharing" % (fault.symbol, fault.owner)
                    )
                if fault.symbol in report.annotated:
                    raise ReproError(
                        "symbol %r faulted again after sharing — the "
                        "share() callback did not relocate it"
                        % fault.symbol
                    )
                annotations.annotate(
                    fault.symbol,
                    fault.owner_library or fault.library or "app",
                    whitelist=("*",),
                )
                share(fault)
                report.annotated.append(fault.symbol)
            else:
                report.clean = True
                return report
        raise ReproError(
            "porting did not converge after %d iterations"
            % self.max_iterations
        )
