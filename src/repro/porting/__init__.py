"""Porting support: crash-driven annotation workflow and Table 1 data.

"The typical workflow, once gates have been inserted, is to run the
program with a representative test case until it crashes due to memory
access violations.  Crash reports point to the symbol that triggered the
crash, at which point the developer can annotate it for sharing"
(Section 4.4).  :mod:`repro.porting.workflow` automates exactly that loop
over the simulation's real :class:`~repro.errors.ProtectionFault` crash
reports; :mod:`repro.porting.effort` reproduces Table 1.
"""

from repro.porting.effort import porting_effort_table
from repro.porting.workflow import PortingWorkflow, render_crash_report

__all__ = ["PortingWorkflow", "porting_effort_table",
           "render_crash_report"]
