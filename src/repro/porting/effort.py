"""Table 1: porting effort.

Two views side by side:

* the paper's numbers (patch size of the port including automatic gate
  replacements, and hand-annotated shared variables), and
* this reproduction's equivalents — patch sizes measured by running the
  toolchain's transformation pass over the substrate's source IR, and
  shared-variable counts from the annotation registry.
"""

from __future__ import annotations

from repro.apps.base import PAPER_PORTING_TABLE
from repro.core.backends import get_backend
from repro.core.config import CompartmentSpec, SafetyConfig
from repro.core.toolchain.sources import default_kernel_sources
from repro.core.toolchain.transform import transform

#: Map from Table 1 row names to substrate libraries.
ROW_LIBRARIES = {
    "TCP/IP stack (LwIP)": ("lwip",),
    "scheduler (uksched)": ("uksched",),
    "filesystem (ramfs, vfscore)": ("ramfs", "vfscore"),
    "time subsystem (uktime)": ("uktime",),
}


def _max_isolation_config():
    """A configuration isolating every portable component separately,
    so the transformation pass touches every boundary."""
    specs = [
        CompartmentSpec("comp1", mechanism="intel-mpk", default=True),
        CompartmentSpec("comp2", mechanism="intel-mpk"),
        CompartmentSpec("comp3", mechanism="intel-mpk"),
        CompartmentSpec("comp4", mechanism="intel-mpk"),
    ]
    assignment = {
        "lwip": "comp2",
        "uksched": "comp3",
        "vfscore": "comp4",
        "ramfs": "comp4",
    }
    return SafetyConfig(specs, assignment)


def porting_effort_table():
    """Rows for the Table 1 benchmark: paper vs this reproduction."""
    config = _max_isolation_config()
    backend = get_backend(config.mechanism)
    sources = default_kernel_sources()
    _, report, annotations = transform(sources, config, backend)

    rows = []
    for manifest in PAPER_PORTING_TABLE:
        row = manifest.row()
        libraries = ROW_LIBRARIES.get(manifest.name)
        if libraries:
            added = sum(report.patch_size(lib)[0] for lib in libraries)
            removed = sum(report.patch_size(lib)[1] for lib in libraries)
            shared = sum(annotations.count_for(lib) for lib in libraries)
            row["repro patch"] = "+%d / -%d" % (added, removed)
            row["repro shared vars"] = shared
        else:
            # Applications: the IR models kernel components; application
            # shared-variable counts come from their port manifests.
            row["repro patch"] = "(app: see manifest)"
            row["repro shared vars"] = manifest.paper_shared_vars
        rows.append(row)
    return rows
