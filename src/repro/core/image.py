"""Built OS images: compartments, sections, entry points, gate routing.

``build_image`` (toolchain) produces an :class:`Image` — the static
artifact: which library lives in which compartment, which functions are
legal compartment entry points, what memory sections the linker script
lays out, and which transformations were applied.  Booting the image
(:mod:`repro.core.vm`) gives compartments their runtime identity
(protection key or address space) and installs a :class:`Router` that
sends every cross-library call through the right gate.
"""

from __future__ import annotations

from repro.core.hardening import work_multiplier
from repro.errors import BuildError, EntryPointViolation
from repro.hw.cpu import current_context
from repro.kernel.lib import get_library
from repro.obs import tracer as obs


class Compartment:
    """One compartment: static spec plus runtime protection identity."""

    def __init__(self, index, spec, libraries):
        self.index = index
        self.spec = spec
        self.libraries = tuple(libraries)
        # Runtime identity, assigned by the backend at boot:
        self.pkey = None            # MPK protection key
        self.shared_pkeys = ()      # keys of shared domains it may touch
        self.address_space = None   # EPT address space

    @property
    def name(self):
        return self.spec.name

    @property
    def mechanism(self):
        return self.spec.mechanism

    @property
    def hardening(self):
        return self.spec.hardening

    def private_keys(self):
        """Keys exclusive to this compartment (revoked when leaving).

        Key 0 (the default compartment's key) is treated like any other:
        compartments are *peers*, so entering an isolated compartment
        drops access to the default compartment's data too — otherwise a
        compromised isolated library could read application data living
        in the default compartment.
        """
        if self.pkey is None:
            return ()
        return (self.pkey,)

    def allowed_keys(self):
        """Keys this compartment's PKRU enables: own + shared domains."""
        keys = set()
        if self.pkey is not None:
            keys.add(self.pkey)
        keys.update(self.shared_pkeys)
        return keys

    def __repr__(self):
        return "Compartment(%d %s libs=%s pkey=%s)" % (
            self.index, self.name, list(self.libraries), self.pkey,
        )


class SectionSpec:
    """One linker-script output section."""

    __slots__ = ("name", "kind", "compartment_index", "size", "perm")

    def __init__(self, name, kind, compartment_index, size, perm):
        self.name = name
        self.kind = kind
        self.compartment_index = compartment_index
        self.size = size
        self.perm = perm

    def __repr__(self):
        return "SectionSpec(%s comp=%s %s)" % (
            self.name, self.compartment_index, self.perm,
        )


class Image:
    """The static build artifact."""

    def __init__(self, config, compartments, sections, linker_script,
                 annotations, transform_report, backend_name):
        self.config = config
        self.compartments = list(compartments)
        self.sections = list(sections)
        self.linker_script = linker_script
        self.annotations = annotations
        self.transform_report = transform_report
        self.backend_name = backend_name
        self._lib_to_comp = {}
        for comp in self.compartments:
            for lib in comp.libraries:
                if lib in self._lib_to_comp:
                    raise BuildError("library %s in two compartments" % lib)
                self._lib_to_comp[lib] = comp
        #: Legal entry points per compartment index (gate-level CFI).
        self.legal_entries = {
            comp.index: self._collect_entries(comp)
            for comp in self.compartments
        }

    @staticmethod
    def _collect_entries(comp):
        entries = set()
        for lib in comp.libraries:
            entries.update(get_library(lib).entry_points)
        return entries

    # -- lookups ------------------------------------------------------------
    def compartment_of(self, library):
        comp = self._lib_to_comp.get(library)
        if comp is None:
            # Unassigned libraries land in the default compartment.
            default_name = self.config.default_compartment.name
            comp = next(
                c for c in self.compartments if c.name == default_name
            )
        return comp

    def compartment_by_name(self, name):
        for comp in self.compartments:
            if comp.name == name:
                return comp
        raise BuildError("no compartment named %r" % name)

    @property
    def n_compartments(self):
        return len(self.compartments)

    def work_multiplier(self, library):
        """Hardening multiplier for code of ``library`` in this image."""
        comp = self.compartment_of(library)
        return work_multiplier(library, comp.hardening)

    def is_legal_entry(self, comp_index, func_name):
        return func_name in self.legal_entries.get(comp_index, ())

    def __repr__(self):
        return "Image(%s, %d compartments, backend=%s)" % (
            self.config.name, self.n_compartments, self.backend_name,
        )


class Router:
    """Routes entry-point calls: direct within a compartment, gated across.

    Installed on the execution context at boot.  This is the runtime
    equivalent of the toolchain inlining a concrete gate at every
    transformed call site.
    """

    def __init__(self, image, gates, costs):
        self.image = image
        self.gates = gates  # (src_index, dst_index) -> Gate
        self.costs = costs
        self.direct_calls = 0
        self.gated_calls = 0

    def gate_between(self, src_index, dst_index):
        gate = self.gates.get((src_index, dst_index))
        if gate is None:
            raise BuildError(
                "no gate from compartment %d to %d" % (src_index, dst_index)
            )
        return gate

    def route(self, library, func, args, kwargs):
        ctx = current_context()
        dst = self.image.compartment_of(library)
        # Entry hooks drive request-span claiming (repro.obs.spans) and
        # must fire exactly once per routed call, on *both* paths below:
        # under a single-compartment layout every call is direct and no
        # gate event ever exists, yet a request's service interval still
        # has to be observed.  The hooks never charge the clock (tracer
        # rules).
        tracer = obs.ACTIVE
        token = tracer.entry_begin(library, ctx) if tracer.enabled \
            else None
        try:
            engine = getattr(ctx, "compiler", None)
            if engine is not None and engine.state == 0 \
                    and ctx.gate_depth == 0:
                # Top-level call with an idle datapath compiler: let the
                # engine decide to record, execute a plan, or interpret.
                # Nested routed calls (gate_depth > 0) and calls made
                # while the engine is mid-session stay interpreted and
                # become interior ops of the enclosing trace.
                return engine.dispatch(self, ctx, dst, library, func,
                                       args, kwargs)
            return self._dispatch(ctx, dst, library, func, args, kwargs)
        finally:
            if token is not None:
                tracer.entry_end(token, ctx)

    def _dispatch(self, ctx, dst, library, func, args, kwargs):
        """The interpreted path: direct or gated, no specialization."""
        if dst.index == ctx.compartment:
            # Same compartment: a classical function call
            # (Fig. 3 step 3b).
            self.direct_calls += 1
            ctx.clock.charge(self.costs.function_call)
            with ctx.in_library(library):
                return func(*args, **kwargs)
        name = getattr(func, "__name__", str(func))
        declared_entry = (
            getattr(func, "__flexos_entry__", False)
            and getattr(func, "__flexos_library__", None) == library
        )
        if not declared_entry and not self.image.is_legal_entry(
                dst.index, name):
            raise EntryPointViolation(name, dst.name)
        self.gated_calls += 1
        gate = self.gate_between(ctx.compartment, dst.index)
        return gate.call(ctx, library, func, args, kwargs)
