"""Per-compartment software hardening (Section 4.5).

FlexOS can enable CFI, KASan, UBSan and the stack protector per
compartment; isolating unhardened components from hardened ones preserves
the hardened components' guarantees.  Two aspects are modelled:

* **Cost** — each mechanism carries a fractional work overhead; libraries
  have a *sensitivity* factor (pointer-chasing scheduler code suffers more
  from KASan than a byte-pumping network loop).  The multiplier applied to
  a library's modelled work is ``1 + sensitivity * sum(overheads)``.
  Calibration anchors from the paper's Redis data (Fig. 6): hardening the
  scheduler costs ~24 % of total runtime, hardening the application ~42 %.
* **Detection** — functional checks used by tests and the fault-injection
  examples: KASan redzones/quarantine over allocations, UBSan integer
  checks, CFI indirect-call target sets, and stack canaries.
"""

from __future__ import annotations

import enum

from repro.errors import (
    CfiViolation,
    ConfigError,
    KasanViolation,
    StackSmashDetected,
    UbsanViolation,
)


class Hardening(enum.Enum):
    CFI = "cfi"
    KASAN = "kasan"
    UBSAN = "ubsan"
    STACK_PROTECTOR = "stack-protector"


#: Aliases accepted in configuration files (the paper's snippet says
#: ``asan``; the prototype section names KASan).
_ALIASES = {
    "asan": Hardening.KASAN,
    "kasan": Hardening.KASAN,
    "ubsan": Hardening.UBSAN,
    "cfi": Hardening.CFI,
    "sp": Hardening.STACK_PROTECTOR,
    "stack-protector": Hardening.STACK_PROTECTOR,
    "stackprotector": Hardening.STACK_PROTECTOR,
}

#: The hardening block toggled per component in Fig. 6 (stack protector,
#: UBSan and KASan, per Section 6.1).
FIG6_HARDENING = frozenset(
    {Hardening.STACK_PROTECTOR, Hardening.UBSAN, Hardening.KASAN}
)

#: Fractional work overhead of each mechanism at sensitivity 1.0.
OVERHEAD = {
    Hardening.KASAN: 0.90,
    Hardening.UBSAN: 0.25,
    Hardening.STACK_PROTECTOR: 0.05,
    Hardening.CFI: 0.10,
}

#: Per-library sensitivity to hardening instrumentation.
SENSITIVITY = {
    "uksched": 1.33,   # pointer-heavy, every access instrumented
    "ukalloc": 1.20,
    "lwip": 0.75,      # bulk data movement amortises the checks
    "vfscore": 0.90,
    "ramfs": 0.90,
    "uktime": 0.60,
    "newlib": 0.85,
    "ukintr": 0.80,
    "ukboot": 0.50,
}

#: Sensitivity for application libraries not in the table.
DEFAULT_SENSITIVITY = 1.0


def parse_hardening(items):
    """Normalise a list of hardening names/enums into a frozenset."""
    result = set()
    for item in items:
        if isinstance(item, Hardening):
            result.add(item)
            continue
        key = str(item).strip().lower()
        if key not in _ALIASES:
            raise ConfigError("unknown hardening mechanism %r" % item)
        result.add(_ALIASES[key])
    return frozenset(result)


def work_multiplier(library, hardening_set):
    """Hardening work multiplier for ``library``."""
    if not hardening_set:
        return 1.0
    sensitivity = SENSITIVITY.get(library, DEFAULT_SENSITIVITY)
    total = sum(OVERHEAD[h] for h in hardening_set)
    return 1.0 + sensitivity * total


# ---------------------------------------------------------------------------
# Functional detection models
# ---------------------------------------------------------------------------

class KasanShadow:
    """Allocator shadow state: redzones and a use-after-free quarantine."""

    def __init__(self):
        self._live = {}       # id(allocation) -> size
        self._freed = set()

    def on_alloc(self, allocation):
        self._live[id(allocation)] = allocation.size
        self._freed.discard(id(allocation))

    def on_free(self, allocation):
        if id(allocation) not in self._live:
            raise KasanViolation(
                "invalid free of %r (double free or foreign pointer)"
                % allocation
            )
        del self._live[id(allocation)]
        self._freed.add(id(allocation))

    def check_access(self, allocation, offset, length=1):
        """Validate a byte access within an allocation."""
        if id(allocation) in self._freed:
            raise KasanViolation(
                "use-after-free: %d byte(s) at offset %d in %r"
                % (length, offset, allocation)
            )
        size = self._live.get(id(allocation))
        if size is None:
            raise KasanViolation("access to untracked allocation %r"
                                 % allocation)
        if offset < 0 or offset + length > size:
            raise KasanViolation(
                "out-of-bounds: offset %d length %d in %d-byte allocation"
                % (offset, length, size)
            )


class UbsanChecker:
    """Undefined-behaviour checks on modelled integer arithmetic."""

    INT32_MIN = -(1 << 31)
    INT32_MAX = (1 << 31) - 1

    def checked_add(self, a, b):
        result = a + b
        if not self.INT32_MIN <= result <= self.INT32_MAX:
            raise UbsanViolation("signed overflow: %d + %d" % (a, b))
        return result

    def checked_mul(self, a, b):
        result = a * b
        if not self.INT32_MIN <= result <= self.INT32_MAX:
            raise UbsanViolation("signed overflow: %d * %d" % (a, b))
        return result

    def checked_shift(self, value, amount):
        if amount < 0 or amount >= 32:
            raise UbsanViolation("shift amount %d out of range" % amount)
        return (value << amount) & 0xFFFFFFFF


class CfiPolicy:
    """Indirect-call target validation.

    The gate-level CFI the backends provide is entry-point based; this is
    the compiler-level scheme for *within*-compartment indirect calls.
    """

    def __init__(self):
        self._targets = set()

    def register(self, func):
        self._targets.add(func)
        return func

    def indirect_call(self, func, *args, **kwargs):
        if func not in self._targets:
            raise CfiViolation(
                "indirect call to unregistered target %r"
                % getattr(func, "__name__", func)
            )
        return func(*args, **kwargs)


class StackCanary:
    """A per-frame canary checked on return."""

    VALUE = 0xDEADBEEF

    def __init__(self):
        self.word = self.VALUE

    def smash(self, value=0):
        """Model a linear overflow running over the canary."""
        self.word = value

    def verify(self):
        if self.word != self.VALUE:
            raise StackSmashDetected(
                "canary clobbered: 0x%x" % self.word
            )
