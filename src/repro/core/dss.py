"""Data Shadow Stacks (Section 4.1, Fig. 4).

Shared stack variables are the performance problem: converting them to
shared-heap allocations costs as much as an entire domain transition per
variable.  The DSS reuses the compiler's stack bookkeeping instead: the
thread's stack is doubled, the upper half (the DSS) is placed in the
shared domain, and the shadow of stack variable ``x`` lives at
``&x + STACK_SIZE``.  Allocation is a cursor bump — constant, stack-speed
cost — and references to shared stack variables are rewritten at build
time to ``*(&var + STACK_SIZE)``.
"""

from __future__ import annotations

from repro.errors import AllocationError
from repro.hw.memory import MemoryObject
from repro.kernel.lib import work
from repro.kernel.memmgr import STACK_SIZE


class DataShadowStack:
    """The DSS of one thread in one compartment."""

    def __init__(self, stack_region, dss_region, costs):
        if dss_region.size != stack_region.size:
            raise AllocationError(
                "DSS must mirror the stack: %d != %d bytes"
                % (dss_region.size, stack_region.size)
            )
        self.stack_region = stack_region
        self.dss_region = dss_region
        self.costs = costs
        self._cursor = 0
        self.allocations = 0

    @property
    def stack_size(self):
        return self.stack_region.size

    def shadow_address(self, stack_offset):
        """The shadow of the stack slot at ``stack_offset``.

        Numerically ``&x + STACK_SIZE`` in the paper's layout where the
        DSS occupies the doubled stack's upper half.
        """
        return self.stack_region.base + stack_offset + STACK_SIZE

    def frame(self):
        """Open a stack frame; shared variables allocated in it die with it."""
        return DssFrame(self)

    def _alloc(self, symbol, size):
        if self._cursor + size > self.dss_region.size:
            raise AllocationError("DSS overflow allocating %s" % symbol)
        offset = self._cursor
        self._cursor += size
        self.allocations += 1
        # Stack-speed: the compiler already did the bookkeeping.
        work(self.costs.dss_alloc)
        return MemoryObject(symbol, self.dss_region, offset)

    def _release(self, mark):
        self._cursor = mark

    @property
    def bytes_used(self):
        return self._cursor

    @property
    def memory_overhead(self):
        """Extra bytes this DSS costs (the stack is doubled)."""
        return self.dss_region.size


class DssFrame:
    """One function frame's shared-variable allocations."""

    def __init__(self, dss):
        self.dss = dss
        self._mark = dss._cursor

    def __enter__(self):
        return self

    def alloc(self, symbol, size=1):
        """Allocate the shadow slot of a shared stack variable."""
        return self.dss._alloc(symbol, size)

    def close(self):
        self.dss._release(self._mark)

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False
