"""Call gates (Section 3.1 / 4.1 / 4.2).

In FlexOS source code, cross-library calls are *abstract* gates; the
toolchain replaces them at build time with an implementation chosen by the
configuration.  Gates implement the System V calling convention from the
perspective of caller and callee, but unlike plain calls they isolate the
register set and (for the full MPK gate) switch call stacks.

Implemented gates:

* :class:`FunctionCallGate` — caller and callee share a compartment; the
  result "is similar to the code prior porting, resulting in zero
  overhead" (Fig. 3).
* :class:`MpkFullGate` — HODOR-style: saves and clears registers, switches
  the PKRU and the per-thread per-compartment stack (7 steps, Section 4.1).
* :class:`MpkLightGate` — ERIM-style: swaps the PKRU before a normal call;
  shares stack and registers ("lesser guarantees ... close to the raw cost
  of wrpkru instructions").
* :class:`EptRpcGate` — places a function pointer and arguments in shared
  memory; the callee VM's RPC server validates the entry point and runs
  the function on a worker thread.
* :class:`CheriGate` — the sketched CHERI backend (Section 4.3): CInvoke
  plus sentry capabilities, register + capability-register clearing.

Every gate records its transitions on the execution context, which is how
the profile-mode crossing counts are validated against functional runs.
"""

from __future__ import annotations

from repro.errors import (
    CompartmentFault,
    DegradedService,
    EntryPointViolation,
    IagoViolation,
    ReproError,
)
from repro.hw.ept import record_space_switch
from repro.hw.memory import AccessType, MemoryObject
from repro.obs import tracer as obs


class Gate:
    """Base gate: a one-way-in, one-way-out domain transition."""

    #: Name used by transformation output and debug dumps.
    kind = "abstract"

    #: Hard ceiling on supervised replays of one call.  Built-in policies
    #: self-cap (RetryPolicy at ``max_retries``, RestartPolicy at
    #: ``max_restarts``), but a custom policy that keeps answering
    #: ``retry``/``restart`` would otherwise spin this loop forever; at
    #: the ceiling the gate converts the decision to ``propagate`` and
    #: lets the raw fault unwind.
    MAX_SUPERVISED_ATTEMPTS = 8

    def __init__(self, src, dst, costs):
        """
        Args:
            src: caller :class:`~repro.core.image.Compartment`.
            dst: callee :class:`~repro.core.image.Compartment`.
            costs: the machine's :class:`~repro.hw.costs.CostModel`.
        """
        self.src = src
        self.dst = dst
        self.costs = costs
        self.crossings = 0

    # -- hooks subclasses implement -----------------------------------------
    def _enter(self, ctx):
        """Switch ``ctx`` into the callee domain; returns restore state."""
        raise NotImplementedError

    def _leave(self, ctx, state):
        """Restore ``ctx`` into the caller domain."""
        raise NotImplementedError

    def one_way_cost(self):
        raise NotImplementedError

    # -- the call template ---------------------------------------------------
    def call(self, ctx, library, func, args, kwargs):
        """Perform the cross-compartment call ``func(*args, **kwargs)``.

        A fault raised by the callee first unwinds through
        :meth:`_call_once` (which restores the caller's domain exactly as
        a clean return would), then reaches the per-compartment
        supervisor, whose policy decides: propagate the raw fault, retry
        or restart-and-replay the call, or convert it into a
        :class:`~repro.errors.DegradedService` the application can answer
        gracefully.  Without a supervisor the fault propagates unchanged.

        Replays are bounded by :attr:`MAX_SUPERVISED_ATTEMPTS` no matter
        what the policy answers, so a pathological always-retry policy
        cannot wedge the gate: at the ceiling the raw fault propagates
        (and a ``gate-retry-ceiling`` trace event records the override).
        """
        attempt = 0
        while True:
            try:
                return self._call_once(ctx, library, func, args, kwargs)
            except CompartmentFault:
                # Already supervised by an inner gate; never re-wrap.
                raise
            except ReproError as fault:
                supervisor = ctx.supervisor
                if supervisor is None:
                    raise
                decision = supervisor.on_fault(ctx, self, fault, attempt)
                if decision.action == "degrade":
                    raise DegradedService(
                        self.dst.index, self.dst.name, self.kind, fault,
                    ) from fault
                if decision.action in ("retry", "restart"):
                    attempt += 1
                    if attempt >= self.MAX_SUPERVISED_ATTEMPTS:
                        tracer = obs.ACTIVE
                        if tracer.enabled:
                            tracer.instant(
                                "gate-retry-ceiling", "supervisor",
                                dst=self.dst.name, kind=self.kind,
                                attempts=attempt,
                                fault=type(fault).__name__,
                                policy_action=decision.action,
                            )
                        raise
                    continue
                raise

    def _call_once(self, ctx, library, func, args, kwargs):
        """One crossing, teed through the datapath compiler when active.

        With an engine recording, the crossing runs interpreted while its
        enter/leave bracket is captured; with an engine executing a plan,
        a crossing the plan marked ``coalesced`` (its predecessor left the
        same gate) skips the per-crossing accounting via
        :meth:`_call_coalesced` — the domain transition itself still
        happens either way.
        """
        engine = getattr(ctx, "compiler", None)
        if engine is not None and engine.state:
            if engine.state == 2 and engine.on_gate_enter(self, ctx):
                return self._call_coalesced(ctx, library, func, args,
                                            kwargs, engine)
            if engine.state == 1:
                engine.on_gate_record_enter(self, ctx)
            try:
                return self._call_interpreted(ctx, library, func, args,
                                              kwargs)
            finally:
                engine.on_gate_leave(self, ctx)
        return self._call_interpreted(ctx, library, func, args, kwargs)

    def _call_interpreted(self, ctx, library, func, args, kwargs):
        """One crossing: enter, run, and unwind symmetrically.

        The unwind is exception-safe at every stage: even when
        :meth:`_enter` itself faults (e.g. the EPT descriptor write is
        rejected), ``gate_depth`` is restored; and a raising callee is
        still charged the return crossing, has the caller's PKRU/address
        space/stack restored, and leaves ``ctx.compartment`` untouched —
        the hardware pops the domain no matter how the call ends.
        """
        self.crossings += 1
        ctx.record_transition(self.src.index, self.dst.index)
        tracer = obs.ACTIVE
        span = tracer.gate_begin(self, ctx, library) if tracer.enabled \
            else None
        status = "ok"
        clock = ctx.clock
        # Pure crossing overhead: the cycles charged entering and leaving
        # the domain (one-way costs, stack creation, descriptor copies),
        # excluding everything the callee itself did.  Measured by clock
        # reads around the unchanged charge sequence, so enabling the
        # measurement perturbs no virtual-time result; request spans book
        # exactly this as the crossing's gate cycles.
        overhead = 0.0
        ctx.gate_depth += 1
        try:
            entered_at = clock.cycles
            clock.charge(self.one_way_cost())
            state = self._enter(ctx)
            overhead += clock.cycles - entered_at
            previous_comp = ctx.compartment
            ctx.compartment = self.dst.index
            try:
                injector = ctx.fault_injector
                with ctx.in_library(library):
                    if injector is not None:
                        injector.on_gate_enter(self, ctx)
                    result = func(*args, **kwargs)
                if injector is not None:
                    result = injector.on_gate_return(self, ctx, result)
                return result
            finally:
                ctx.compartment = previous_comp
                left_at = clock.cycles
                clock.charge(self.one_way_cost())
                self._leave(ctx, state)
                overhead += clock.cycles - left_at
        except ReproError as fault:
            status = type(fault).__name__
            raise
        finally:
            ctx.gate_depth -= 1
            if span is not None:
                tracer.gate_end(span, ctx, status=status,
                                overhead=overhead)

    def _call_coalesced(self, ctx, library, func, args, kwargs, engine):
        """One crossing whose per-crossing accounting a plan coalesced.

        The domain transition is still performed — the callee runs in its
        own compartment with exactly the PKRU/address-space/stack state
        the interpreted path would install (``_enter_elided`` differs
        from ``_enter`` only in *bookkeeping*), and the unwind is just as
        exception-safe.  What is skipped: the crossing counter, the
        transition record, both one-way charges, the gate span, and the
        per-crossing register-write events.  The plan applied this edge's
        transition accounting once for the whole run of consecutive
        same-gate crossings, which is the win the pass buys.
        """
        ctx.gate_depth += 1
        try:
            state = self._enter_elided(ctx)
            previous_comp = ctx.compartment
            ctx.compartment = self.dst.index
            try:
                injector = ctx.fault_injector
                with ctx.in_library(library):
                    if injector is not None:
                        injector.on_gate_enter(self, ctx)
                    result = func(*args, **kwargs)
                if injector is not None:
                    result = injector.on_gate_return(self, ctx, result)
                return result
            finally:
                ctx.compartment = previous_comp
                self._leave_elided(ctx, state)
        finally:
            ctx.gate_depth -= 1
            engine.on_gate_leave(self, ctx)

    # -- coalesced-crossing hooks ---------------------------------------------
    def _enter_elided(self, ctx):
        """Domain entry minus per-crossing bookkeeping.

        Default: identical to :meth:`_enter` — subclasses whose entry
        mixes state mutation with charges/events override this to keep
        only the mutation.
        """
        return self._enter(ctx)

    def _leave_elided(self, ctx, state):
        """Domain exit minus per-crossing bookkeeping."""
        self._leave(ctx, state)


class FunctionCallGate(Gate):
    """Same-compartment call: an ordinary System V function call."""

    kind = "function-call"

    def one_way_cost(self):
        return self.costs.function_call / 2.0

    def _enter(self, ctx):
        return None

    def _leave(self, ctx, state):
        pass


class MpkLightGate(Gate):
    """ERIM-style gate: wrpkru swap, shared stack and registers."""

    kind = "mpk-light"

    def __init__(self, src, dst, costs):
        super().__init__(src, dst, costs)
        #: Cached (signature, deny_mask, allow_mask) for this edge.  The
        #: signature captures everything the masks derive from, so a
        #: post-boot ``create_restricted_domain`` (which reassigns the
        #: callee's ``shared_pkeys``) recomputes on the next crossing.
        self._transition_cache = None

    def one_way_cost(self):
        return self.costs.gate_mpk_light

    def _transition_masks(self):
        """The edge's PKRU transition as two key masks, cached."""
        signature = (self.src.pkey, self.dst.pkey, self.dst.shared_pkeys)
        cached = self._transition_cache
        if cached is not None and cached[0] == signature:
            return cached[1], cached[2]
        deny = 0
        for key in self.src.private_keys():
            deny |= 1 << key
        allow = 0
        for key in self.dst.allowed_keys():
            allow |= 1 << key
        self._transition_cache = (signature, deny, allow)
        return deny, allow

    def _enter(self, ctx):
        pkru = ctx.pkru
        if pkru is None:
            return None
        snap = pkru.snapshot()
        if obs.ACTIVE.enabled:
            # Traced path: per-key register writes, so the pkru event
            # stream (and the counters the perf baselines pin) is exactly
            # what the uncached gate emitted.
            for key in self.src.private_keys():
                pkru.deny(key)
            for key in self.dst.allowed_keys():
                pkru.allow(key)
        else:
            deny, allow = self._transition_masks()
            pkru.apply_transition(deny, allow)
        return snap

    def _leave(self, ctx, state):
        if ctx.pkru is not None and state is not None:
            ctx.pkru.restore(state)

    def _enter_elided(self, ctx):
        # Coalesced crossing: identical register state to _enter, always
        # via the single-write mask path — the per-key pkru events are
        # exactly the per-crossing bookkeeping coalescing elides.
        pkru = ctx.pkru
        if pkru is None:
            return None
        snap = pkru.snapshot()
        deny, allow = self._transition_masks()
        pkru.apply_transition(deny, allow)
        return snap

    def _leave_elided(self, ctx, state):
        if ctx.pkru is not None and state is not None:
            ctx.pkru.restore_quiet(state)


class MpkFullGate(MpkLightGate):
    """HODOR-style gate with register isolation and stack switching.

    Upon transition the gate (1) saves the caller's register set,
    (2) clears registers, (3) loads arguments, (4) saves the stack
    pointer, (5) switches thread permissions, (6) switches to the callee's
    per-thread stack from the compartment's stack registry, (7) calls.
    """

    kind = "mpk-full"

    def __init__(self, src, dst, costs, stack_provider=None):
        super().__init__(src, dst, costs)
        #: Callable(thread, compartment) -> stack region; installed by the
        #: backend so stacks are created lazily on first entry.
        self.stack_provider = stack_provider

    def one_way_cost(self):
        return self.costs.gate_mpk_full

    def _enter(self, ctx):
        snap = super()._enter(ctx)
        self._ensure_stack(ctx)
        return snap

    def _enter_elided(self, ctx):
        snap = super()._enter_elided(ctx)
        self._ensure_stack(ctx)
        return snap

    def _ensure_stack(self, ctx):
        thread = ctx.current_thread
        if thread is not None and self.stack_provider is not None:
            # The stack-registry lookup the paper describes; creates the
            # compartment-local stack on first use.
            if thread.stack_for(self.dst.index) is None:
                self.stack_provider(thread, self.dst)


class EptRpcGate(Gate):
    """Cross-VM RPC over a shared-memory window (Section 4.2).

    The caller writes a function pointer and arguments into a predefined
    shared area; the callee VM busy-waits, validates that the pointer is a
    legal API entry point, services the request on a worker thread from
    its RPC pool, and writes the return value back.
    """

    kind = "ept-rpc"

    #: Size of the modelled RPC descriptor (pointer + packed arguments).
    DESCRIPTOR_BYTES = 64

    def __init__(self, src, dst, costs, window=None, legal_entries=None):
        super().__init__(src, dst, costs)
        self.window = window
        self.legal_entries = legal_entries
        self.serviced = 0
        #: Function objects already validated against ``legal_entries``.
        #: Entry-point legality is a property of the function, not the
        #: call, so repeated RPCs to the same entry skip re-validation
        #: (argument Iago checks still run on every call).
        self._entry_cache = set()

    def one_way_cost(self):
        return self.costs.gate_ept

    def call(self, ctx, library, func, args, kwargs):
        # The RPC server checks the function pointer before executing it:
        # the EPT backend's stronger CFI (entry *and* exit control).
        name = getattr(func, "__name__", str(func))
        if func not in self._entry_cache:
            declared_entry = getattr(func, "__flexos_entry__", False)
            if (self.legal_entries is not None
                    and name not in self.legal_entries
                    and not declared_entry):
                raise EntryPointViolation(name, self.dst.name)
            self._entry_cache.add(func)
        self._check_arguments(name, args, kwargs)
        self.serviced += 1
        return super().call(ctx, library, func, args, kwargs)

    def _check_arguments(self, name, args, kwargs):
        """The unmarshalling side's argument sanity check.

        Section 3.3 assumes interfaces "correctly check arguments and are
        free of confused deputy/Iago situations".  For the RPC server
        that means: pointer arguments must reference *shared* memory — a
        caller handing the server a pointer into the server's own private
        data (hoping the server dereferences it with its own authority)
        is rejected before the call runs.
        """
        for value in list(args) + list(kwargs.values()):
            if isinstance(value, MemoryObject):
                region = value.region
                if region.compartment == self.dst.index:
                    raise IagoViolation(
                        "RPC %s to %s passed a pointer to the callee's "
                        "private %r (confused-deputy attempt)"
                        % (name, self.dst.name, value.symbol)
                    )

    def _enter(self, ctx):
        # Marshal the descriptor into this VM's slice of the window.
        ctx.clock.charge(self.DESCRIPTOR_BYTES * self.costs.memcpy_per_byte)
        if self.window is not None:
            self.window.allocate(self.src.name, self.DESCRIPTOR_BYTES)
            if self.window.region is not None and ctx.mmu is not None:
                ctx.mmu.check(ctx, self.window.region, AccessType.WRITE,
                              symbol="rpc-descriptor")
        state = ctx.address_space
        ctx.address_space = self.dst.address_space
        record_space_switch(state, ctx.address_space, "call")
        return state

    def _leave(self, ctx, state):
        # Return value travels back through the shared window.
        ctx.clock.charge(8 * self.costs.memcpy_per_byte)
        record_space_switch(ctx.address_space, state, "return")
        ctx.address_space = state

    def _enter_elided(self, ctx):
        # Coalesced crossing: the descriptor still lands in the window
        # (the callee must see it — the slice cursor advances — and its
        # permission check still runs, hoisted by the plan), and the
        # context still moves into the callee VM's address space.  What
        # is skipped is this crossing's bookkeeping: the marshalling
        # charges, and the window-alloc/space-switch events — the EPT
        # analogue of the MPK gate's per-key PKRU events.
        if self.window is not None:
            self.window.allocate(self.src.name, self.DESCRIPTOR_BYTES,
                                 quiet=True)
            if self.window.region is not None and ctx.mmu is not None:
                ctx.mmu.check(ctx, self.window.region, AccessType.WRITE,
                              symbol="rpc-descriptor")
        state = ctx.address_space
        ctx.address_space = self.dst.address_space
        return state

    def _leave_elided(self, ctx, state):
        ctx.address_space = state


class CheriGate(Gate):
    """Sketch backend: CInvoke + sentry capabilities (Section 4.3)."""

    kind = "cheri"

    def one_way_cost(self):
        return self.costs.gate_one_way("cheri")

    def _enter(self, ctx):
        return None

    def _leave(self, ctx, state):
        pass


GATE_KINDS = {
    cls.kind: cls
    for cls in (FunctionCallGate, MpkLightGate, MpkFullGate, EptRpcGate,
                CheriGate)
}
