"""Machines and booted FlexOS instances.

:class:`Machine` bundles the simulated hardware (clock, cost model,
physical memory, MMU).  :class:`FlexOSInstance` boots an
:class:`~repro.core.image.Image` on a machine: the ``ukboot`` plan runs
TCB steps first (protection setup, memory manager, scheduler), then brings
up the remaining subsystems, and finally installs the gate router on the
execution context.  ``instance.run()`` is the context manager under which
application code executes with full isolation semantics.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.core.backends import get_backend
from repro.core.dss import DataShadowStack
from repro.core.image import Router
from repro.core.sharing import SharingStrategy
from repro.errors import BuildError, ConfigError
from repro.faults.supervisor import Supervisor
from repro.hw.clock import Clock
from repro.hw.costs import CostModel
from repro.hw.cpu import ExecutionContext, use_context
from repro.hw.memory import MemoryObject, PhysicalMemory
from repro.hw.mmu import MMU
from repro.kernel.boot import BootPlan
from repro.kernel.fs import RamFs, Vfs
from repro.kernel.irq import InterruptController
from repro.kernel.libc import Libc
from repro.kernel.memmgr import MemoryManager
from repro.kernel.net import NetworkStack
from repro.kernel.sched import Scheduler
from repro.kernel.smp import SmpScheduler
from repro.kernel.uktime import TimeSubsystem


class Machine:
    """The simulated host: clock, costs, memory, MMU."""

    def __init__(self, costs=None):
        self.costs = costs or CostModel.xeon_4114()
        self.clock = Clock()
        self.memory = PhysicalMemory()
        self.mmu = MMU(self.memory, self.costs)


class FlexOSInstance:
    """One booted FlexOS image."""

    def __init__(self, image, machine=None, allocator="tlsf",
                 net_device=None, ip="10.0.0.2", cores=None):
        self.image = image
        self.machine = machine or Machine()
        self.allocator_kind = allocator
        self.net_device = net_device
        self.ip = ip
        #: ``None`` boots the serial reference scheduler; an integer N
        #: boots the run-to-yield SMP scheduler on N virtual cores
        #: (:mod:`repro.kernel.smp`; N=1 is trace-identical to serial).
        self.cores = cores

        self.costs = self.machine.costs
        self.clock = self.machine.clock
        self.memory = self.machine.memory
        self.mmu = self.machine.mmu

        self.backend = get_backend(image.backend_name)
        self.ctx = ExecutionContext(
            self.clock, self.costs, self.mmu,
            compartment=image.compartment_of("ukboot").index,
        )
        self.ctx.work_multiplier = image.work_multiplier

        self.memmgr = MemoryManager(self.memory, allocator_kind=allocator)
        #: Per-compartment fault supervision (propagate by default);
        #: installed on the execution context at boot so gates consult it.
        self.supervisor = Supervisor()
        self.sched = None
        self.time = None
        self.irq = None
        self.vfs = None
        self.libc = None
        self.net = None
        self.router = None
        self.shared_pkey = 0
        self.shared_window = None
        self.boot_plan = None
        self._section_regions = {}   # section name -> Region
        self._data_region_of = {}    # compartment index -> Region
        self._shared_region = None
        self._booted = False

    # -- hooks used by backends ------------------------------------------------
    def add_section_region(self, section, pkey, perm):
        """Create the memory region backing one linker section."""
        region = self.memory.add_region(
            section.name, section.size, perm=perm, pkey=pkey,
            compartment=section.compartment_index, kind=section.kind,
        )
        self._section_regions[section.name] = region
        if section.kind == "data" and section.compartment_index is not None:
            self._data_region_of[section.compartment_index] = region
        if section.kind == "shared":
            self._shared_region = region
        return region

    def provide_stack(self, thread, comp):
        """Create (lazily) a thread's stack in ``comp``; returns it.

        Used both by the scheduler's thread-create hook and by the full
        MPK gate's stack registry on first cross-compartment entry.
        """
        existing = thread.stack_for(comp.index)
        if existing is not None:
            return existing
        stack, dss_region = self.memmgr.create_stack(
            thread.name, comp.index,
            pkey=comp.pkey if comp.pkey is not None else 0,
            with_dss=self.image.config.sharing == "dss",
        )
        thread.stacks[comp.index] = stack
        if dss_region is not None:
            thread.dss[comp.index] = DataShadowStack(
                stack, dss_region, self.costs,
            )
        self.backend.on_stack_created(self, comp, stack, dss_region)
        return stack

    # -- boot --------------------------------------------------------------------
    def boot(self):
        """Run the ukboot plan; returns self (fluent)."""
        if self._booted:
            raise BuildError("instance already booted")
        plan = BootPlan()
        plan.add("setup-protection",
                 lambda: self.backend.setup_domains(self), tcb=True)
        plan.add("init-memory", self._init_memory, tcb=True)
        plan.add("init-sched", self._init_sched, tcb=True)
        plan.add("init-irq", self._init_irq, tcb=True)
        plan.add("init-time", self._init_time)
        plan.add("init-fs", self._init_fs)
        if self.net_device is not None:
            plan.add("init-net", self._init_net)
        plan.add("install-router", self._install_router)
        self.boot_plan = plan
        with use_context(self.ctx):
            plan.run()
        self._booted = True
        return self

    def _init_memory(self):
        for comp in self.image.compartments:
            heap = self.memmgr.create_heap(
                comp.index,
                pkey=comp.pkey if comp.pkey is not None else 0,
                kind=comp.spec.allocator,  # None -> the instance default
            )
            self.backend.on_heap_created(self, comp, heap.region)
            # The supervisor's restart policy reboots a compartment by
            # reinitialising its heap (applications may register further
            # state-reset handlers on top).
            self.supervisor.add_restart_handler(
                comp.index,
                lambda index=comp.index: self.memmgr.reset_heap(index),
            )
        shared = self.memmgr.create_shared_heap(self.shared_pkey)
        self.backend.on_heap_created(self, None, shared.region)

    def _init_sched(self):
        if self.cores is None:
            self.sched = Scheduler(self.clock, self.costs)
        else:
            self.sched = SmpScheduler(self.clock, self.costs,
                                      n_cores=self.cores)
        # Every thread gets its home-compartment stack (doubled with a
        # DSS when the sharing strategy asks for one); the backend's
        # thread-create hook then applies mechanism-specific setup.
        self.sched.register_hook(
            "thread_create",
            lambda thread: self.provide_stack(
                thread, self.image.compartments[thread.home_compartment],
            ),
        )
        self.backend.install_hooks(self)

    def _init_irq(self):
        self.irq = InterruptController(self.clock, self.costs)

    def _init_time(self):
        self.time = TimeSubsystem(self.clock, self.costs)

    def _init_fs(self):
        ramfs = RamFs(self.costs, time_subsystem=None)
        self.vfs = Vfs(ramfs, self.costs)

    def _init_net(self):
        self.net = NetworkStack(self.net_device, self.ip, self.costs,
                                self.clock)
        # First-level NIC interrupt: the handler pumps the stack (the
        # blocking socket layer also polls, NAPI-style; both paths share
        # the same entry point so the crossing attribution is identical).
        self.irq.register(
            InterruptController.IRQ_NET,
            lambda payload: self.net.pump(),
        )

    def _install_router(self):
        gates = self.backend.build_gates(self)
        self.router = Router(self.image, gates, self.costs)
        self.ctx.router = self.router
        self.ctx.supervisor = self.supervisor
        self.libc = Libc(
            self.costs, memmgr=self.memmgr,
            default_compartment=self.image.compartment_of("newlib").index,
        )

    # -- running ------------------------------------------------------------------
    @contextmanager
    def run(self):
        """Execute application code under this instance's context."""
        if not self._booted:
            raise BuildError("boot() the instance before run()")
        with use_context(self.ctx):
            yield self

    # -- observability ----------------------------------------------------------
    @contextmanager
    def trace(self, tracer=None):
        """Enable observability for a block; yields the active Tracer.

        Installs ``tracer`` (or a fresh :class:`~repro.obs.Tracer` bound
        to this instance's clock) as the process-wide active tracer for
        the block, restoring the previous tracer on exit.  Tracing never
        charges the virtual clock, so measurements taken inside the
        block are identical to an untraced run::

            with instance.trace() as tracer, instance.run():
                ... workload ...
            snapshot = tracer.metrics.snapshot()
        """
        from repro.obs import Tracer, tracing

        tracer = tracer if tracer is not None else Tracer(clock=self.clock)
        with tracing(tracer):
            yield tracer

    # -- fault injection & supervision ----------------------------------------
    def attach_injector(self, injector):
        """Install a :class:`~repro.faults.injector.FaultInjector`.

        Gates consult the injector at every crossing; the injector in
        turn reaches back into this instance (heaps, devices) for
        non-gate injection sites.  Pass None to detach.
        """
        if injector is not None:
            injector.instance = self
        self.ctx.fault_injector = injector
        return injector

    def set_fault_policy(self, library_or_comp, policy, **kwargs):
        """Set the recovery policy for the compartment of a library.

        ``library_or_comp`` is a micro-library name (resolved to its
        compartment) or a compartment index.  ``policy`` is a name from
        :data:`repro.faults.supervisor.POLICY_NAMES` or a Policy object.
        """
        if isinstance(library_or_comp, str):
            index = self.image.compartment_of(library_or_comp).index
        else:
            index = library_or_comp
        return self.supervisor.set_policy(index, policy, **kwargs)

    # -- data helpers ----------------------------------------------------------
    def shared_object(self, symbol, value=None):
        """A MemoryObject in the shared data section (any compartment)."""
        if self._shared_region is None:
            raise ConfigError("image has no shared data section")
        return MemoryObject(symbol, self._shared_region, value=value)

    def private_object(self, library, symbol, value=None):
        """A MemoryObject in ``library``'s compartment data section."""
        comp = self.image.compartment_of(library)
        region = self._data_region_of.get(comp.index)
        if region is None:
            raise ConfigError(
                "compartment %s has no data section" % comp.name
            )
        return MemoryObject(symbol, region, value=value, library=library)

    def sharing_for(self, thread):
        """The configured sharing strategy, bound to ``thread``."""
        config = self.image.config
        comp_index = thread.home_compartment
        dss = thread.dss.get(comp_index)
        stack = thread.stack_for(comp_index)
        return SharingStrategy(
            config.sharing, self.costs,
            shared_heap=self.memmgr.shared_heap
            if self.memmgr.has_shared_heap else None,
            stack_region=stack, dss=dss,
        )

    # -- introspection --------------------------------------------------------
    def gate_crossings(self):
        """Total cross-compartment transitions since boot."""
        return self.ctx.total_transitions()

    def __repr__(self):
        return "FlexOSInstance(%s, booted=%s)" % (
            self.image.config.name, self._booted,
        )
