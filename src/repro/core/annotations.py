"""``__shared`` data annotations and whitelists (Section 3.1).

FlexOS treats all data a library allocates as private by default.
Variables passed across compartments must be annotated as shared with a
*whitelist* of libraries (access-control-list style).  At build time the
toolchain materialises each annotation according to the configured data
sharing strategy; at run time, the registry is what the porting workflow
appends to when a crash report names an unannotated symbol.
"""

from __future__ import annotations

from repro.errors import ConfigError


class SharedAnnotation:
    """One ``__shared`` annotation on a variable."""

    __slots__ = ("symbol", "library", "whitelist", "storage")

    def __init__(self, symbol, library, whitelist=(), storage="stack"):
        """
        Args:
            symbol: variable name, e.g. ``rx_buf``.
            library: the library that declares (owns) the variable.
            whitelist: libraries allowed to access it ("*" = all).
            storage: ``stack``, ``heap`` or ``static`` — the three cases
                the toolchain materialises differently.
        """
        if storage not in ("stack", "heap", "static"):
            raise ConfigError("bad storage class %r for %s" % (storage, symbol))
        self.symbol = symbol
        self.library = library
        self.whitelist = tuple(whitelist)
        self.storage = storage

    @property
    def key(self):
        return (self.library, self.symbol)

    def allows(self, library):
        return (
            library == self.library
            or "*" in self.whitelist
            or library in self.whitelist
        )

    def __repr__(self):
        return "__shared(%s.%s -> %s, %s)" % (
            self.library, self.symbol, list(self.whitelist), self.storage,
        )


class AnnotationRegistry:
    """All shared-data annotations of one build."""

    def __init__(self):
        self._by_key = {}

    def annotate(self, symbol, library, whitelist=(), storage="stack"):
        """Add (or widen) an annotation; returns it."""
        annotation = self._by_key.get((library, symbol))
        if annotation is None:
            annotation = SharedAnnotation(symbol, library, whitelist, storage)
            self._by_key[annotation.key] = annotation
        else:
            merged = set(annotation.whitelist) | set(whitelist)
            self._by_key[annotation.key] = SharedAnnotation(
                symbol, library, sorted(merged), annotation.storage,
            )
            annotation = self._by_key[annotation.key]
        return annotation

    def lookup(self, library, symbol):
        return self._by_key.get((library, symbol))

    def is_shared(self, library, symbol):
        return (library, symbol) in self._by_key

    def of_library(self, library):
        return sorted(
            (a for a in self._by_key.values() if a.library == library),
            key=lambda a: a.symbol,
        )

    def count_for(self, library):
        """Shared-variable count, the Table 1 metric."""
        return len(self.of_library(library))

    def __len__(self):
        return len(self._by_key)

    def __iter__(self):
        return iter(sorted(self._by_key.values(), key=lambda a: a.key))
