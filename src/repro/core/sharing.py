"""Data-sharing strategies for shared stack variables (Sections 3.1, 4.1).

Three ways to materialise a ``__shared`` stack variable:

* ``shared-stack`` — the whole call stack lives in the shared domain.
  Fastest and least safe (any compartment can read every local).
* ``dss`` — Data Shadow Stacks: only the shadows of annotated variables
  are shared.  Stack-speed allocation, space cost of a doubled stack.
* ``heap`` — stack-to-heap conversion (the approach of prior work): each
  shared variable becomes a shared-heap allocation, freed at frame exit.
  One to two orders of magnitude slower per variable (Fig. 11a).

Each strategy yields frames with a uniform ``alloc``/``close`` interface,
so the Fig. 11a microbenchmark can drive all three identically.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.hw.memory import MemoryObject
from repro.kernel.lib import work


class SharedStackFrame:
    """Frame on a fully shared stack: plain stack slots."""

    def __init__(self, stack_region, costs, cursor_box):
        self._region = stack_region
        self._costs = costs
        self._cursor_box = cursor_box
        self._mark = cursor_box[0]

    def alloc(self, symbol, size=1):
        offset = self._cursor_box[0]
        self._cursor_box[0] += size
        work(self._costs.stack_alloc)
        return MemoryObject(symbol, self._region, offset)

    def close(self):
        self._cursor_box[0] = self._mark

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False


class HeapConvertFrame:
    """Frame whose shared variables are shared-heap allocations."""

    def __init__(self, shared_heap, costs):
        self._heap = shared_heap
        self._costs = costs
        self._allocations = []

    def alloc(self, symbol, size=1):
        allocation = self._heap.malloc(size)
        self._allocations.append(allocation)
        region = self._heap.region
        return MemoryObject(symbol, region, allocation.offset)

    def close(self):
        # Frame exit frees every converted variable (this is the cost the
        # DSS exists to avoid).
        while self._allocations:
            self._allocations.pop().free()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False


class SharingStrategy:
    """Factory for frames of one configured sharing strategy."""

    def __init__(self, kind, costs, shared_heap=None, stack_region=None,
                 dss=None):
        if kind not in ("heap", "dss", "shared-stack"):
            raise ConfigError("unknown sharing strategy %r" % kind)
        self.kind = kind
        self.costs = costs
        self.shared_heap = shared_heap
        self.stack_region = stack_region
        self.dss = dss
        self._stack_cursor = [0]

    def frame(self):
        """Open a frame for shared stack variables."""
        if self.kind == "dss":
            if self.dss is None:
                raise ConfigError("DSS strategy without a DSS instance")
            return self.dss.frame()
        if self.kind == "heap":
            if self.shared_heap is None:
                raise ConfigError("heap strategy without a shared heap")
            return HeapConvertFrame(self.shared_heap, self.costs)
        if self.stack_region is None:
            raise ConfigError("shared-stack strategy without a stack region")
        return SharedStackFrame(self.stack_region, self.costs,
                                self._stack_cursor)

    def __repr__(self):
        return "SharingStrategy(%s)" % self.kind
