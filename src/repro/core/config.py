"""Build-time safety configuration.

A :class:`SafetyConfig` is everything the user decides at build time
(Section 3): which micro-libraries go in which compartment, which
isolation mechanism backs each compartment, which hardening is enabled
per compartment, the data-sharing strategy, and (for MPK) the gate
flavour.  :func:`loads_config` parses the YAML-subset configuration-file
format shown in the paper::

    compartments:
      comp1:
        mechanism: intel-mpk
        default: True
      comp2:
        mechanism: intel-mpk
        hardening: [cfi, asan]
    libraries:
      - libredis: comp1
      - lwip: comp2
"""

from __future__ import annotations

from repro.core.hardening import parse_hardening
from repro.errors import ConfigError

MECHANISMS = ("none", "intel-mpk", "vm-ept", "cheri", "intel-sgx")

SHARING_STRATEGIES = ("heap", "dss", "shared-stack")

GATE_FLAVOURS = ("full", "light")


ALLOCATORS = ("tlsf", "lea", "bump")


class CompartmentSpec:
    """One compartment in a safety configuration.

    ``allocator`` selects the compartment's private-heap allocator; many
    hardening schemes instrument the allocator, and FlexOS' per-
    compartment allocators make that instrumentation selective
    (Section 4.5).
    """

    def __init__(self, name, mechanism="intel-mpk", hardening=(),
                 default=False, allocator=None):
        if mechanism not in MECHANISMS:
            raise ConfigError(
                "unknown mechanism %r for compartment %s" % (mechanism, name)
            )
        if allocator is not None and allocator not in ALLOCATORS:
            raise ConfigError(
                "unknown allocator %r for compartment %s" % (allocator, name)
            )
        self.name = name
        self.mechanism = mechanism
        self.hardening = parse_hardening(hardening)
        self.default = default
        self.allocator = allocator

    def __repr__(self):
        return "CompartmentSpec(%s, %s, hardening=%s%s)" % (
            self.name, self.mechanism,
            sorted(h.value for h in self.hardening),
            ", default" if self.default else "",
        )


class SafetyConfig:
    """A complete build-time safety configuration."""

    def __init__(self, compartments, assignment, sharing="dss",
                 mpk_gate="full", name=None):
        """
        Args:
            compartments: list of :class:`CompartmentSpec`.
            assignment: dict library-name -> compartment-name.
            sharing: data-sharing strategy (``heap``/``dss``/``shared-stack``).
            mpk_gate: ``full`` (HODOR-style) or ``light`` (ERIM-style).
            name: optional human label used by the explorer.
        """
        self.compartments = {c.name: c for c in compartments}
        if len(self.compartments) != len(compartments):
            raise ConfigError("duplicate compartment names")
        self.assignment = dict(assignment)
        self.sharing = sharing
        self.mpk_gate = mpk_gate
        self.name = name or self._derive_name()
        self.validate()

    # -- validation -----------------------------------------------------------
    def validate(self):
        if not self.compartments:
            raise ConfigError("a configuration needs at least one compartment")
        defaults = [c for c in self.compartments.values() if c.default]
        if len(defaults) != 1:
            raise ConfigError(
                "exactly one compartment must be marked default (got %d)"
                % len(defaults)
            )
        if self.sharing not in SHARING_STRATEGIES:
            raise ConfigError("unknown sharing strategy %r" % self.sharing)
        if self.mpk_gate not in GATE_FLAVOURS:
            raise ConfigError("unknown MPK gate flavour %r" % self.mpk_gate)
        for lib, comp in self.assignment.items():
            if comp not in self.compartments:
                raise ConfigError(
                    "library %s assigned to unknown compartment %r"
                    % (lib, comp)
                )
        # The prototype builds one mechanism per image (as in the paper's
        # evaluation); mixed-mechanism images are future work there too.
        mechanisms = {
            c.mechanism for c in self.compartments.values()
        }
        if len(mechanisms) > 1 and self.n_compartments > 1:
            raise ConfigError(
                "mixed isolation mechanisms in one image: %s"
                % sorted(mechanisms)
            )

    def _derive_name(self):
        groups = {}
        for lib, comp in sorted(self.assignment.items()):
            groups.setdefault(comp, []).append(lib)
        parts = ["+".join(libs) for _, libs in sorted(groups.items())]
        return " | ".join(parts)

    # -- introspection ----------------------------------------------------------
    @property
    def n_compartments(self):
        return len(self.compartments)

    @property
    def mechanism(self):
        """The image's isolation mechanism."""
        if self.n_compartments == 1:
            return "none"
        return next(iter(self.compartments.values())).mechanism

    @property
    def default_compartment(self):
        return next(c for c in self.compartments.values() if c.default)

    def compartment_of(self, library):
        comp = self.assignment.get(library)
        if comp is None:
            return self.default_compartment.name
        return comp

    def libraries_in(self, compartment_name):
        return sorted(
            lib for lib, comp in self.assignment.items()
            if comp == compartment_name
        )

    def hardening_of(self, library):
        return self.compartments[self.compartment_of(library)].hardening

    def same_compartment(self, lib_a, lib_b):
        return self.compartment_of(lib_a) == self.compartment_of(lib_b)

    def partition(self, libraries):
        """Frozen-set partition of ``libraries`` induced by the assignment.

        Used by the explorer's refinement-based safety order.
        """
        groups = {}
        for lib in libraries:
            groups.setdefault(self.compartment_of(lib), set()).add(lib)
        return frozenset(frozenset(g) for g in groups.values())

    def __repr__(self):
        return "SafetyConfig(%s, mech=%s, sharing=%s)" % (
            self.name, self.mechanism, self.sharing,
        )


def single_compartment(libraries, hardening=(), name=None):
    """Convenience: everything in one unisolated compartment."""
    comp = CompartmentSpec("comp1", mechanism="none",
                           hardening=hardening, default=True)
    return SafetyConfig(
        [comp], {lib: "comp1" for lib in libraries}, name=name,
    )


# ---------------------------------------------------------------------------
# Configuration-file parsing (the YAML subset used in the paper's snippet).
# ---------------------------------------------------------------------------

def _parse_scalar(text):
    text = text.strip()
    if text in ("True", "true"):
        return True
    if text in ("False", "false"):
        return False
    if text.startswith("[") and text.endswith("]"):
        inner = text[1:-1].strip()
        if not inner:
            return []
        return [item.strip() for item in inner.split(",")]
    return text


def _parse_block(lines, indent):
    """Parse an indentation-nested block into dicts/lists/scalars."""
    result = {}
    items = []
    i = 0
    while i < len(lines):
        raw = lines[i]
        stripped = raw.strip()
        if not stripped or stripped.startswith("#"):
            i += 1
            continue
        depth = len(raw) - len(raw.lstrip())
        if depth < indent:
            break
        if depth > indent:
            raise ConfigError("bad indentation at line %r" % raw)
        if stripped.startswith("- "):
            body = stripped[2:]
            if ":" in body:
                key, _, value = body.partition(":")
                items.append({key.strip(): _parse_scalar(value)})
            else:
                items.append(_parse_scalar(body))
            i += 1
            continue
        key, _, value = stripped.partition(":")
        key = key.strip()
        if value.strip():
            result[key] = _parse_scalar(value)
            i += 1
        else:
            # Nested block: find its extent.
            j = i + 1
            while j < len(lines):
                nxt = lines[j]
                if nxt.strip() and not nxt.strip().startswith("#"):
                    nxt_depth = len(nxt) - len(nxt.lstrip())
                    if nxt_depth <= indent:
                        break
                j += 1
            child_lines = lines[i + 1:j]
            child_indent = None
            for child in child_lines:
                if child.strip() and not child.strip().startswith("#"):
                    child_indent = len(child) - len(child.lstrip())
                    break
            if child_indent is None:
                result[key] = {}
            else:
                result[key], _ = _parse_block(child_lines, child_indent), None
                result[key] = result[key]
            i = j
    if items and result:
        raise ConfigError("mixed list and mapping at the same level")
    return items if items else result


def loads_config(text, sharing="dss", mpk_gate="full", name=None):
    """Parse the paper's configuration-file format into a SafetyConfig."""
    lines = text.splitlines()
    top = _parse_block(lines, 0)
    if not isinstance(top, dict) or "compartments" not in top:
        raise ConfigError("configuration needs a 'compartments' section")
    comp_specs = []
    for comp_name, body in top["compartments"].items():
        if not isinstance(body, dict):
            raise ConfigError("compartment %s must be a mapping" % comp_name)
        comp_specs.append(CompartmentSpec(
            comp_name,
            mechanism=body.get("mechanism", "intel-mpk"),
            hardening=body.get("hardening", []),
            default=bool(body.get("default", False)),
        ))
    assignment = {}
    for entry in top.get("libraries", []):
        if not isinstance(entry, dict) or len(entry) != 1:
            raise ConfigError("bad library entry %r" % entry)
        ((lib, comp),) = entry.items()
        assignment[lib] = comp
    return SafetyConfig(comp_specs, assignment, sharing=sharing,
                        mpk_gate=mpk_gate, name=name)
