"""The build driver: configuration + sources -> Image.

Includes a :class:`BuildCache`: the "quickly isolate exploitable
libraries" use case rests on rebuilds being cheap ("it takes seconds to
create a new binary"), and exploration sweeps rebuild aggressively, so
images are memoised on the configuration's build-relevant fingerprint.
"""

from __future__ import annotations

from repro.core.backends import get_backend
from repro.core.image import Compartment, Image
from repro.core.toolchain.linker import generate_linker_script
from repro.core.toolchain.sources import default_kernel_sources
from repro.core.toolchain.transform import transform
from repro.core.toolchain.verify import verify_transform
from repro.errors import BuildError
from repro.kernel.lib import LIBRARY_REGISTRY


def _compartment_layout(config, sources):
    """Group every library into its compartment, default catching strays."""
    all_libraries = set(sources.libraries)
    all_libraries.update(LIBRARY_REGISTRY)
    all_libraries.update(config.assignment)
    by_name = {name: [] for name in config.compartments}
    for library in sorted(all_libraries):
        by_name[config.compartment_of(library)].append(library)
    compartments = []
    for index, name in enumerate(sorted(config.compartments)):
        compartments.append(
            Compartment(index, config.compartments[name], by_name[name])
        )
    return compartments


def config_fingerprint(config):
    """A hashable key of everything the build output depends on."""
    compartments = tuple(
        (name, spec.mechanism, tuple(sorted(h.value for h in spec.hardening)),
         spec.default, spec.allocator)
        for name, spec in sorted(config.compartments.items())
    )
    return (
        compartments,
        tuple(sorted(config.assignment.items())),
        config.sharing,
        config.mpk_gate,
    )


class BuildCache:
    """Memoises built images by configuration fingerprint."""

    def __init__(self):
        self._images = {}
        self.hits = 0
        self.misses = 0

    def get(self, config):
        image = self._images.get(config_fingerprint(config))
        if image is None:
            self.misses += 1
        else:
            self.hits += 1
        return image

    def put(self, config, image):
        self._images[config_fingerprint(config)] = image

    def __len__(self):
        return len(self._images)


def build_image(config, sources=None, cache=None):
    """Build a FlexOS image for ``config``.

    Runs the whole toolchain: cross-library analysis, source
    transformation, transformation verification, linker-script
    generation.  Returns the static :class:`~repro.core.image.Image`.
    Pass a :class:`BuildCache` to memoise repeat builds (exploration
    sweeps, rapid-response rebuilds); caching only applies to builds of
    the default kernel sources.
    """
    cacheable = cache is not None and sources is None
    if cacheable:
        cached = cache.get(config)
        if cached is not None:
            return cached
    sources = sources or default_kernel_sources()
    backend = get_backend(config.mechanism)

    transformed, report, annotations = transform(sources, config, backend)
    verify_transform(transformed, config, annotations)

    compartments = _compartment_layout(config, sources)
    if not compartments:
        raise BuildError("configuration produced no compartments")

    script, sections = generate_linker_script(config, compartments, backend)

    image = Image(
        config=config,
        compartments=compartments,
        sections=sections,
        linker_script=script,
        annotations=annotations,
        transform_report=report,
        backend_name=config.mechanism,
    )
    if cacheable:
        cache.put(config, image)
    return image
