"""Library-source IR: what the toolchain transforms.

A tiny statement-level model of C sources: functions contain computation,
direct calls (possibly into other libraries), indirect calls through
function pointers, and stack-variable declarations; libraries additionally
declare static variables.  ``__shared`` annotations attach to variables.

The IR is deliberately close to what Coccinelle semantic patches match
on; the transformation pass rewrites statements in place and counts
added/removed lines the way ``diffstat`` would, which is how the Table 1
patch sizes are produced.
"""

from __future__ import annotations

from repro.errors import ConfigError


class Stmt:
    """Base statement."""

    #: Source lines this statement occupies (for patch accounting).
    lines = 1


class Compute(Stmt):
    """Straight-line computation worth ``cycles``."""

    def __init__(self, cycles, lines=1):
        self.cycles = cycles
        self.lines = lines

    def __repr__(self):
        return "Compute(%.0f)" % self.cycles


class Call(Stmt):
    """A direct call ``library:function``."""

    def __init__(self, library, function):
        self.library = library
        self.function = function

    @property
    def target(self):
        return "%s:%s" % (self.library, self.function)

    def __repr__(self):
        return "Call(%s)" % self.target


class IndirectCall(Stmt):
    """A call through a function pointer.

    The callee cannot be determined statically; the programmer must
    annotate the candidate targets and the libraries they may be called
    from (Section 3.1's corner case), and the toolchain generates gate
    wrappers around them.
    """

    def __init__(self, candidates=(), annotated_callers=()):
        self.candidates = tuple(candidates)       # (library, function) pairs
        self.annotated_callers = tuple(annotated_callers)

    def __repr__(self):
        return "IndirectCall(%d candidates)" % len(self.candidates)


class StackVar(Stmt):
    """A stack-variable declaration, possibly ``__shared``."""

    def __init__(self, name, size=8, shared=False, whitelist=()):
        self.name = name
        self.size = size
        self.shared = shared
        self.whitelist = tuple(whitelist)

    def __repr__(self):
        flag = " __shared" if self.shared else ""
        return "StackVar(%s[%d]%s)" % (self.name, self.size, flag)


class GateStmt(Stmt):
    """A concrete gate instantiated by the transformation pass."""

    lines = 2  # the inlined gate spans more source than a bare call

    def __init__(self, kind, library, function, original):
        self.kind = kind
        self.library = library
        self.function = function
        self.original = original

    def __repr__(self):
        return "GateStmt(%s -> %s:%s)" % (self.kind, self.library,
                                          self.function)


class DssVar(Stmt):
    """A shared stack variable rewritten to its DSS shadow."""

    def __init__(self, original):
        self.original = original
        self.name = original.name
        self.size = original.size


class SharedHeapVar(Stmt):
    """A shared stack variable converted to a shared-heap allocation."""

    lines = 2  # malloc + free

    def __init__(self, original):
        self.original = original
        self.name = original.name
        self.size = original.size


class WrapperStmt(Stmt):
    """A generated gate wrapper for indirect-call targets."""

    lines = 3

    def __init__(self, original):
        self.original = original


class StaticVar:
    """A library-level static variable, possibly ``__shared``."""

    def __init__(self, name, size=8, shared=False, whitelist=()):
        self.name = name
        self.size = size
        self.shared = shared
        self.whitelist = tuple(whitelist)
        #: Set by the transform when moved to a shared section.
        self.section = None

    def __repr__(self):
        flag = " __shared" if self.shared else ""
        return "StaticVar(%s[%d]%s)" % (self.name, self.size, flag)


class FunctionSource:
    """One function: a named list of statements."""

    def __init__(self, name, library, body=()):
        self.name = name
        self.library = library
        self.body = list(body)

    @property
    def qualified(self):
        return "%s:%s" % (self.library, self.name)

    def source_lines(self):
        return 2 + sum(stmt.lines for stmt in self.body)  # braces + body

    def __repr__(self):
        return "FunctionSource(%s, %d stmts)" % (self.qualified,
                                                 len(self.body))


class LibrarySource:
    """One micro-library's sources."""

    def __init__(self, name, functions=(), static_vars=()):
        self.name = name
        self.functions = {}
        for func in functions:
            self.add_function(func)
        self.static_vars = list(static_vars)

    def add_function(self, func):
        if func.library != self.name:
            raise ConfigError(
                "function %s added to wrong library %s"
                % (func.qualified, self.name)
            )
        if func.name in self.functions:
            raise ConfigError("duplicate function %s" % func.qualified)
        self.functions[func.name] = func
        return func

    def __repr__(self):
        return "LibrarySource(%s, %d functions)" % (
            self.name, len(self.functions),
        )


class SourceTree:
    """All library sources of one build."""

    def __init__(self, libraries=()):
        self.libraries = {}
        for lib in libraries:
            self.add_library(lib)

    def add_library(self, lib):
        if lib.name in self.libraries:
            raise ConfigError("duplicate library %s" % lib.name)
        self.libraries[lib.name] = lib
        return lib

    def library(self, name):
        if name not in self.libraries:
            raise ConfigError("no sources for library %r" % name)
        return self.libraries[name]

    def functions(self):
        for lib in self.libraries.values():
            for func in lib.functions.values():
                yield func

    def resolve(self, library, function):
        lib = self.library(library)
        func = lib.functions.get(function)
        if func is None:
            raise ConfigError("no function %s:%s" % (library, function))
        return func

    def copy(self):
        """Deep-enough copy for transformation (statements are rebuilt)."""
        tree = SourceTree()
        for lib in self.libraries.values():
            new_lib = LibrarySource(lib.name)
            for func in lib.functions.values():
                new_lib.add_function(
                    FunctionSource(func.name, func.library, list(func.body))
                )
            new_lib.static_vars = [
                StaticVar(v.name, v.size, v.shared, v.whitelist)
                for v in lib.static_vars
            ]
            tree.add_library(new_lib)
        return tree


def default_kernel_sources():
    """An IR model of the substrate's real call structure.

    Statement counts mirror the actual cross-library call sites in
    :mod:`repro.kernel` (socket recv path, VFS dispatch, scheduler
    wake-ups), so transformation output and Table 1 patch accounting
    reflect the same boundaries the functional runtime crosses.
    """
    lwip = LibrarySource("lwip", functions=[
        FunctionSource("tcp_input", "lwip", [
            Compute(600), StackVar("seg_hdr", 20),
            Call("lwip", "ip_route"), Call("ukalloc", "malloc"),
            Compute(200),
        ]),
        FunctionSource("ip_route", "lwip", [Compute(90)]),
        FunctionSource("tcp_recv", "lwip", [
            Compute(50),
            StackVar("rx_buf", 1460, shared=True,
                     whitelist=("newlib", "app")),
            StackVar("recv_flags", 4, shared=True,
                     whitelist=("newlib", "app")),
        ]),
        FunctionSource("tcp_send", "lwip", [
            Compute(300),
            StackVar("tx_buf", 1460, shared=True,
                     whitelist=("newlib", "app")),
            StackVar("tx_len", 4, shared=True,
                     whitelist=("newlib", "app")),
            Call("lwip", "driver_xmit"),
        ]),
        FunctionSource("pbuf_alloc", "lwip", [
            Compute(60), Call("ukalloc", "malloc"),
            StackVar("pbuf_hdr", 16, shared=True, whitelist=("newlib",)),
        ]),
        FunctionSource("pbuf_free", "lwip", [
            Compute(40), Call("ukalloc", "free"),
        ]),
        FunctionSource("sys_timeout", "lwip", [
            Compute(30), Call("uktime", "monotonic_ns"),
        ]),
        FunctionSource("driver_xmit", "lwip", [Compute(150)]),
        FunctionSource("netif_poll", "lwip", [
            Compute(80), Call("lwip", "tcp_input"),
        ]),
    ], static_vars=[
        StaticVar("pcb_table", 2048),
        StaticVar("netif_mtu", 4, shared=True, whitelist=("newlib",)),
        StaticVar("socket_table", 512, shared=True,
                  whitelist=("newlib", "app")),
        StaticVar("dns_cache", 256, shared=True, whitelist=("newlib",)),
    ])

    uksched = LibrarySource("uksched", functions=[
        FunctionSource("yield", "uksched", [Compute(40)]),
        FunctionSource("wake", "uksched", [
            Compute(40), StackVar("waiter", 8, shared=True,
                                  whitelist=("newlib", "app")),
        ]),
        FunctionSource("create_thread", "uksched", [
            Compute(60), Call("ukalloc", "malloc"),
        ]),
        FunctionSource("ctx_switch", "uksched", [Compute(120)]),
    ], static_vars=[
        StaticVar("run_queue", 256, shared=True, whitelist=("*",)),
    ])

    vfscore = LibrarySource("vfscore", functions=[
        FunctionSource("vfs_open", "vfscore", [
            Compute(150), Call("ramfs", "ramfs_lookup"),
            StackVar("path_buf", 256, shared=True, whitelist=("app",)),
        ]),
        FunctionSource("vfs_read", "vfscore", [
            Compute(150), Call("ramfs", "ramfs_read"),
            StackVar("io_vec", 64, shared=True, whitelist=("app",)),
        ]),
        FunctionSource("vfs_write", "vfscore", [
            Compute(150), Call("ramfs", "ramfs_write"),
        ]),
        FunctionSource("vfs_fsync", "vfscore", [
            Compute(300), Call("ramfs", "ramfs_sync"),
        ]),
    ], static_vars=[
        StaticVar("fd_table", 1024),
        StaticVar("mount_table", 128, shared=True, whitelist=("ramfs",)),
    ])

    ramfs = LibrarySource("ramfs", functions=[
        FunctionSource("ramfs_lookup", "ramfs", [Compute(80)]),
        FunctionSource("ramfs_read", "ramfs", [Compute(80)]),
        FunctionSource("ramfs_write", "ramfs", [Compute(80)]),
        FunctionSource("ramfs_sync", "ramfs", [Compute(40)]),
    ], static_vars=[
        StaticVar("inode_table", 4096, shared=True, whitelist=("vfscore",)),
    ])

    uktime = LibrarySource("uktime", functions=[
        FunctionSource("monotonic_ns", "uktime", [Compute(25)]),
        FunctionSource("wall_clock_ns", "uktime", [Compute(25)]),
    ])

    ukalloc = LibrarySource("ukalloc", functions=[
        FunctionSource("malloc", "ukalloc", [Compute(110)]),
        FunctionSource("free", "ukalloc", [Compute(60)]),
    ])

    newlib = LibrarySource("newlib", functions=[
        FunctionSource("recv", "newlib", [
            Compute(30), Call("lwip", "tcp_recv"),
            Call("uksched", "yield"),
        ]),
        FunctionSource("send", "newlib", [
            Compute(30), Call("lwip", "tcp_send"),
        ]),
        FunctionSource("read", "newlib", [
            Compute(20), Call("vfscore", "vfs_read"),
        ]),
        FunctionSource("write", "newlib", [
            Compute(20), Call("vfscore", "vfs_write"),
        ]),
        FunctionSource("malloc", "newlib", [Call("ukalloc", "malloc")]),
        FunctionSource("gettimeofday", "newlib", [
            Call("uktime", "wall_clock_ns"),
        ]),
    ])

    return SourceTree([lwip, uksched, vfscore, ramfs, uktime, ukalloc,
                       newlib])
