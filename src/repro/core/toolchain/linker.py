"""Linker-script generation.

Step (3) of porting a backend: "implementing linker script generation in
the toolchain".  For MPK images, each compartment receives its own
``.text``/``.rodata``/``.data``/``.bss`` group (stamped with the
compartment's protection key by boot code); for EPT, each compartment's
sections form a standalone VM image that additionally duplicates the TCB.
A shared data section carries ``__shared`` statics.
"""

from __future__ import annotations

from repro.core.image import SectionSpec
from repro.errors import LinkError
from repro.hw.memory import PAGE_SIZE, page_align_up
from repro.kernel.lib import LIBRARY_REGISTRY

#: Rough bytes-per-LoC used to size sections from library sizes.
BYTES_PER_LOC = 32

#: Sections every compartment gets, with their kind.
SECTION_KINDS = (
    ("text", "text"),
    ("rodata", "rodata"),
    ("data", "data"),
    ("bss", "bss"),
)


def _library_bytes(libraries):
    total = 0
    for name in libraries:
        lib = LIBRARY_REGISTRY.get(name)
        total += (lib.loc if lib is not None else 500) * BYTES_PER_LOC
    return max(total, PAGE_SIZE)


def generate_linker_script(config, compartments, backend):
    """Produce (script_text, [SectionSpec]) for the image."""
    if not compartments:
        raise LinkError("no compartments to lay out")
    lines = ["/* FlexOS generated linker script — backend: %s */"
             % backend.mechanism, "SECTIONS {"]
    specs = []
    for comp in compartments:
        libraries = list(comp.libraries)
        if backend.mechanism == "vm-ept":
            # TCB duplication: every VM image carries the core libraries.
            libraries += [
                name for name, lib in LIBRARY_REGISTRY.items()
                if lib.in_tcb and name not in libraries
            ]
        size = page_align_up(_library_bytes(libraries))
        for suffix, kind in SECTION_KINDS:
            section_name = ".%s.%s" % (suffix, comp.name)
            specs.append(SectionSpec(section_name, kind, comp.index,
                                     size, kind))
            lines.append("  %s : ALIGN(0x%x) { %s }" % (
                section_name, PAGE_SIZE,
                " ".join("*/%s/*(.%s*)" % (lib, suffix)
                         for lib in libraries) or "/* empty */",
            ))
    # The shared communication section (no owning compartment).
    shared_size = page_align_up(64 * 1024)
    specs.append(SectionSpec(".data.shared", "shared", None,
                             shared_size, "data"))
    lines.append("  .data.shared : ALIGN(0x%x) { *(.data.shared*) }"
                 % PAGE_SIZE)
    lines.append("}")
    return "\n".join(lines), specs
