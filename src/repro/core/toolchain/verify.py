"""Compile-time transformation checks.

"The rest of the toolchain (Coccinelle included) is *not* part of the TCB
as the code includes compile time checks that are able to detect invalid
transformations" (Section 3.3).  These are those checks: run after
transformation, they fail the build rather than trust the rewriter.
"""

from __future__ import annotations

from repro.core.toolchain.sources import (
    Call,
    DssVar,
    GateStmt,
    SharedHeapVar,
    StackVar,
)
from repro.errors import TransformError


def verify_transform(tree, config, annotations):
    """Validate a transformed tree against the configuration.

    Checks:
      1. no raw cross-compartment call survived;
      2. every inserted gate actually crosses compartments, and its kind
         matches the configured mechanism/flavour;
      3. every rewritten shared variable carries an annotation whose
         whitelist names existing libraries;
      4. a shared stack variable only survives unrewritten if the image is
         single-compartment or uses the shared-stack strategy.
    """
    known_libraries = set(tree.libraries)

    for func in tree.functions():
        for stmt in func.body:
            if isinstance(stmt, Call):
                if (stmt.library != func.library
                        and not config.same_compartment(stmt.library,
                                                        func.library)):
                    raise TransformError(
                        "ungated cross-compartment call %s -> %s"
                        % (func.qualified, stmt.target)
                    )
            elif isinstance(stmt, GateStmt):
                if config.same_compartment(stmt.library, func.library):
                    raise TransformError(
                        "spurious gate inside one compartment: %s -> %s:%s"
                        % (func.qualified, stmt.library, stmt.function)
                    )
                expected = _expected_kind(config)
                if stmt.kind != expected:
                    raise TransformError(
                        "gate kind %s does not match configuration (%s)"
                        % (stmt.kind, expected)
                    )
            elif isinstance(stmt, (DssVar, SharedHeapVar)):
                annotation = annotations.lookup(func.library,
                                                stmt.original.name)
                if annotation is None:
                    raise TransformError(
                        "rewritten variable %s in %s lacks an annotation"
                        % (stmt.original.name, func.qualified)
                    )
                for entry in annotation.whitelist:
                    if entry != "*" and entry not in known_libraries \
                            and entry != "app":
                        raise TransformError(
                            "whitelist of %s names unknown library %r"
                            % (stmt.original.name, entry)
                        )
            elif isinstance(stmt, StackVar) and stmt.shared:
                if (config.n_compartments > 1
                        and config.sharing != "shared-stack"):
                    raise TransformError(
                        "shared stack variable %s in %s was not rewritten"
                        % (stmt.name, func.qualified)
                    )
    return True


def _expected_kind(config):
    if config.mechanism == "none":
        return "function-call"
    if config.mechanism == "intel-mpk":
        return "mpk-light" if config.mpk_gate == "light" else "mpk-full"
    if config.mechanism == "vm-ept":
        return "ept-rpc"
    if config.mechanism == "intel-sgx":
        return "sgx-ecall"
    return "cheri"
