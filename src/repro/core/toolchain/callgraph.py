"""Static call-graph analysis (the Cscope step).

"Knowing the control-flow graph of the system, static analysis determines
whether a procedure call crosses library boundaries, and if so, performs
a syntactic replacement of the function call with a call gate instead"
(Section 3.1).  Indirect calls are the corner case: candidates must be
annotated by the programmer, otherwise analysis reports them.
"""

from __future__ import annotations

import networkx as nx

from repro.core.toolchain.sources import Call, IndirectCall


def build_callgraph(tree):
    """Function-level DiGraph; nodes are ``lib:func`` strings."""
    graph = nx.DiGraph()
    for func in tree.functions():
        graph.add_node(func.qualified, library=func.library)
    for func in tree.functions():
        for stmt in func.body:
            if isinstance(stmt, Call):
                graph.add_edge(func.qualified, stmt.target, kind="direct")
            elif isinstance(stmt, IndirectCall):
                for lib, name in stmt.candidates:
                    graph.add_edge(
                        func.qualified, "%s:%s" % (lib, name),
                        kind="indirect",
                    )
    return graph


def cross_library_calls(tree):
    """All (caller_function, call_stmt) pairs that cross library bounds."""
    crossings = []
    for func in tree.functions():
        for stmt in func.body:
            if isinstance(stmt, Call) and stmt.library != func.library:
                crossings.append((func, stmt))
    return crossings


def unannotated_indirect_calls(tree):
    """Indirect calls whose candidates lack caller annotations."""
    missing = []
    for func in tree.functions():
        for stmt in func.body:
            if isinstance(stmt, IndirectCall) and not stmt.annotated_callers:
                crosses = any(
                    lib != func.library for lib, _ in stmt.candidates
                )
                if crosses:
                    missing.append((func, stmt))
    return missing


def library_communication_matrix(tree):
    """Library-level call counts: {(caller_lib, callee_lib): n}."""
    matrix = {}
    for func, stmt in cross_library_calls(tree):
        key = (func.library, stmt.library)
        matrix[key] = matrix.get(key, 0) + 1
    return matrix
