"""Render the source IR as pseudo-C, and transformations as diffs.

A selling point of source-to-source transformation over linker tricks is
debuggability: "transformations can be visually inspected in a high-level
language with usual file comparison tools" (Section 3).  This module
renders a library's IR as pseudo-C and produces the unified diff between
the pre-port source and the transformed output — the Fig. 3 view.
"""

from __future__ import annotations

import difflib

from repro.core.toolchain.sources import (
    Call,
    Compute,
    DssVar,
    GateStmt,
    IndirectCall,
    SharedHeapVar,
    StackVar,
    WrapperStmt,
)

#: Stack size constant used in the DSS shadow expression.
_STACK_SIZE_EXPR = "STACK_SIZE"


def _render_stmt(stmt):
    """One statement -> list of pseudo-C lines (sans indentation)."""
    if isinstance(stmt, Compute):
        return ["/* ~%d cycles of computation */" % stmt.cycles]
    if isinstance(stmt, Call):
        return ["%s();" % stmt.function]
    if isinstance(stmt, GateStmt):
        return [
            "flexos_gate(%s, %s);  /* %s */"
            % (stmt.library, stmt.function, stmt.kind),
            "/* registers saved+cleared, domain switched */",
        ]
    if isinstance(stmt, IndirectCall):
        names = ", ".join("%s:%s" % c for c in stmt.candidates)
        return ["(*fn_ptr)();  /* candidates: %s */" % names]
    if isinstance(stmt, WrapperStmt):
        names = ", ".join("%s:%s" % c for c in stmt.original.candidates)
        return [
            "/* toolchain-generated gate wrappers for: %s */" % names,
            "(*fn_ptr_wrapped)();",
            "/* each target enclosed in the appropriate call gate */",
        ]
    if isinstance(stmt, StackVar):
        decl = "char %s[%d];" % (stmt.name, stmt.size)
        if stmt.shared:
            whitelist = ", ".join(stmt.whitelist) or "*"
            decl = "char %s[%d] __shared(%s);" % (
                stmt.name, stmt.size, whitelist,
            )
        return [decl]
    if isinstance(stmt, DssVar):
        return [
            "char %s[%d];  /* shadow: *(&%s + %s) */"
            % (stmt.name, stmt.size, stmt.name, _STACK_SIZE_EXPR),
        ]
    if isinstance(stmt, SharedHeapVar):
        return [
            "char *%s = flexos_malloc_shared(%d);" % (stmt.name, stmt.size),
            "/* ... */ flexos_free_shared(%s);" % stmt.name,
        ]
    return ["/* %r */" % stmt]


def render_function(func):
    """One function -> pseudo-C text."""
    lines = ["void %s(void)" % func.name, "{"]
    for stmt in func.body:
        lines.extend("    " + line for line in _render_stmt(stmt))
    lines.append("}")
    return lines


def render_library(lib):
    """One library's IR -> pseudo-C translation unit."""
    lines = ["/* micro-library: %s */" % lib.name, ""]
    for var in lib.static_vars:
        decl = "static char %s[%d]" % (var.name, var.size)
        if var.section:
            decl += ' __attribute__((section("%s")))' % var.section
        elif var.shared:
            decl += " __shared(%s)" % (", ".join(var.whitelist) or "*")
        lines.append(decl + ";")
    if lib.static_vars:
        lines.append("")
    for name in sorted(lib.functions):
        lines.extend(render_function(lib.functions[name]))
        lines.append("")
    return lines


def render_diff(before_tree, after_tree, library):
    """Unified diff of one library across the transformation."""
    before = render_library(before_tree.library(library))
    after = render_library(after_tree.library(library))
    diff = difflib.unified_diff(
        before, after,
        fromfile="a/%s.c" % library,
        tofile="b/%s.c (transformed)" % library,
        lineterm="",
    )
    return "\n".join(diff)


def render_all_diffs(before_tree, after_tree):
    """Diffs for every library the transformation touched."""
    chunks = []
    for name in sorted(before_tree.libraries):
        if name in after_tree.libraries:
            diff = render_diff(before_tree, after_tree, name)
            if diff:
                chunks.append(diff)
    return "\n\n".join(chunks)
