"""Build-time source transformation toolchain (Sections 3.1-3.2).

The paper's toolchain uses Cscope to find cross-library calls and
Coccinelle to rewrite sources before compilation.  Here the "sources" are
an IR (:mod:`repro.core.toolchain.sources`) of functions, call sites and
annotated variables; the pipeline is:

1. :mod:`repro.core.toolchain.callgraph` — static analysis finds calls
   that cross library boundaries (the automated gate-insertion step).
2. :mod:`repro.core.toolchain.transform` — source-to-source replacement
   of abstract gates and ``__shared`` placeholders with the backend's
   concrete constructs, with patch-size accounting (Table 1).
3. :mod:`repro.core.toolchain.linker` — linker-script generation: one
   data/rodata/bss group per compartment.
4. :mod:`repro.core.toolchain.verify` — the compile-time checks that keep
   Coccinelle out of the TCB: invalid transformations are detected.
5. :mod:`repro.core.toolchain.build` — the driver producing an
   :class:`~repro.core.image.Image`.
"""

from repro.core.toolchain.build import build_image
from repro.core.toolchain.sources import (
    Call,
    Compute,
    FunctionSource,
    GateStmt,
    IndirectCall,
    LibrarySource,
    SourceTree,
    StackVar,
    StaticVar,
    default_kernel_sources,
)

__all__ = [
    "Call",
    "Compute",
    "FunctionSource",
    "GateStmt",
    "IndirectCall",
    "LibrarySource",
    "SourceTree",
    "StackVar",
    "StaticVar",
    "build_image",
    "default_kernel_sources",
]
