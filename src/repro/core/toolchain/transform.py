"""Source-to-source transformation (the Coccinelle step).

Walks the IR and, per the chosen configuration and backend:

* replaces cross-*compartment* calls with concrete :class:`GateStmt`s
  (cross-library calls within one compartment stay plain calls — "the
  result is similar to the code prior porting, resulting in zero
  overhead", Fig. 3);
* materialises ``__shared`` stack variables per the sharing strategy
  (DSS rewrite or stack-to-heap conversion);
* moves ``__shared`` statics into the shared data section;
* generates gate wrappers for annotated indirect-call targets.

Patch sizes are accounted per library the way ``diffstat`` counts a
unified diff, producing the Table 1 numbers for our substrate.
"""

from __future__ import annotations

from repro.core.annotations import AnnotationRegistry
from repro.core.toolchain.callgraph import unannotated_indirect_calls
from repro.core.toolchain.sources import (
    Call,
    DssVar,
    GateStmt,
    IndirectCall,
    SharedHeapVar,
    StackVar,
    WrapperStmt,
)
from repro.errors import TransformError


class PatchStats:
    """diffstat-style accounting for one library."""

    def __init__(self):
        self.added = 0
        self.removed = 0

    def replace(self, old_lines, new_lines):
        self.removed += old_lines
        self.added += new_lines

    def add(self, lines):
        self.added += lines

    def __repr__(self):
        return "+%d / -%d" % (self.added, self.removed)


class TransformReport:
    """Everything the transformation pass produced."""

    def __init__(self):
        self.patches = {}            # library -> PatchStats
        self.gates_inserted = 0
        self.dss_rewrites = 0
        self.heap_conversions = 0
        self.static_moves = 0
        self.wrappers = 0
        self.rules = ()

    def stats_for(self, library):
        if library not in self.patches:
            self.patches[library] = PatchStats()
        return self.patches[library]

    def patch_size(self, library):
        stats = self.patches.get(library)
        return (stats.added, stats.removed) if stats else (0, 0)


def _gate_kind(config, backend):
    if config.mechanism == "none":
        return "function-call"
    if config.mechanism == "intel-mpk":
        return "mpk-light" if config.mpk_gate == "light" else "mpk-full"
    if config.mechanism == "vm-ept":
        return "ept-rpc"
    if config.mechanism == "intel-sgx":
        return "sgx-ecall"
    return "cheri"


def transform(tree, config, backend):
    """Transform ``tree`` for ``config``; returns (new_tree, report).

    The input tree is not modified.
    """
    missing = unannotated_indirect_calls(tree)
    if missing:
        func, stmt = missing[0]
        raise TransformError(
            "indirect call in %s has unannotated cross-library candidates; "
            "annotate the pointed-to functions with their callers"
            % func.qualified
        )

    out = tree.copy()
    report = TransformReport()
    report.rules = backend.transform_rules()
    annotations = AnnotationRegistry()
    gate_kind = _gate_kind(config, backend)

    for lib in out.libraries.values():
        stats = report.stats_for(lib.name)
        # Static variables: shared ones move to the shared section.
        for var in lib.static_vars:
            if var.shared:
                annotations.annotate(var.name, lib.name, var.whitelist,
                                     storage="static")
                if config.n_compartments > 1:
                    var.section = ".data.shared"
                    stats.replace(1, 1)
                    report.static_moves += 1

        for func in lib.functions.values():
            new_body = []
            for stmt in func.body:
                new_body.append(
                    _transform_stmt(stmt, func, config, gate_kind,
                                    annotations, report, stats)
                )
            func.body = new_body

    return out, report, annotations


def _transform_stmt(stmt, func, config, gate_kind, annotations, report,
                    stats):
    if isinstance(stmt, Call):
        if stmt.library == func.library:
            return stmt
        if config.same_compartment(stmt.library, func.library):
            # Cross-library but intra-compartment: plain call survives.
            return stmt
        gate = GateStmt(gate_kind, stmt.library, stmt.function, stmt)
        stats.replace(stmt.lines, gate.lines)
        report.gates_inserted += 1
        return gate

    if isinstance(stmt, IndirectCall):
        crossing = any(
            not config.same_compartment(lib, func.library)
            for lib, _ in stmt.candidates
        )
        if crossing:
            wrapper = WrapperStmt(stmt)
            stats.replace(stmt.lines, wrapper.lines)
            report.wrappers += 1
            return wrapper
        return stmt

    if isinstance(stmt, StackVar) and stmt.shared:
        annotations.annotate(stmt.name, func.library, stmt.whitelist,
                             storage="stack")
        if config.n_compartments == 1:
            return stmt  # nothing to isolate from
        if config.sharing == "dss":
            rewritten = DssVar(stmt)
            stats.replace(stmt.lines, rewritten.lines)
            report.dss_rewrites += 1
            return rewritten
        if config.sharing == "heap":
            converted = SharedHeapVar(stmt)
            stats.replace(stmt.lines, converted.lines)
            report.heap_conversions += 1
            return converted
        # shared-stack: the declaration itself is untouched; the whole
        # stack lands in the shared domain via the linker script.
        return stmt

    return stmt
