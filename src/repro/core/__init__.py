"""FlexOS core: the paper's primary contribution.

The pieces, mirroring Section 3:

* :mod:`repro.core.config` — build-time safety configuration (compartments,
  mechanisms, hardening, data-sharing strategy) and the paper's YAML-style
  configuration-file format.
* :mod:`repro.core.annotations` — ``__shared`` data annotations and
  whitelists.
* :mod:`repro.core.gates` — call-gate implementations (function call,
  MPK full/light, EPT RPC).
* :mod:`repro.core.dss` — Data Shadow Stacks.
* :mod:`repro.core.sharing` — data-sharing strategies.
* :mod:`repro.core.hardening` — per-compartment software hardening.
* :mod:`repro.core.backends` — the isolation-backend API and registry.
* :mod:`repro.core.toolchain` — build-time source transformations.
* :mod:`repro.core.image` / :mod:`repro.core.vm` — built images and
  booted instances.
* :mod:`repro.core.tcb` — trusted-computing-base accounting.
"""

from repro.core.config import CompartmentSpec, SafetyConfig, loads_config
from repro.core.image import Image
from repro.core.toolchain.build import build_image
from repro.core.vm import FlexOSInstance, Machine

__all__ = [
    "CompartmentSpec",
    "FlexOSInstance",
    "Image",
    "Machine",
    "SafetyConfig",
    "build_image",
    "loads_config",
]
