"""Isolation backends (Section 3.2).

A backend is "the API implementation for a given technology together with
its runtime library".  Porting FlexOS to a new mechanism means
implementing (1) gates, (2) core-library hooks, (3) linker-script
generation, (4) code transformations, and (5) registering the backend —
no redesign.  That contract is :class:`~repro.core.backends.base.IsolationBackend`;
this package registers the prototype's backends (none, Intel MPK, EPT/VM)
plus the CHERI sketch of Section 4.3.
"""

from repro.core.backends.base import (
    BACKEND_REGISTRY,
    IsolationBackend,
    get_backend,
    register_backend,
)
from repro.core.backends.cheri import CheriBackend
from repro.core.backends.ept import EptBackend
from repro.core.backends.mpk import MpkBackend
from repro.core.backends.none import NoIsolationBackend
from repro.core.backends.sgx import SgxBackend

__all__ = [
    "BACKEND_REGISTRY",
    "CheriBackend",
    "EptBackend",
    "IsolationBackend",
    "MpkBackend",
    "NoIsolationBackend",
    "SgxBackend",
    "get_backend",
    "register_backend",
]
