"""EPT/VM isolation backend (Section 4.2).

The extreme point of the design space: one VM image per compartment, each
containing a duplicated TCB (boot code, scheduler, memory manager, backend
runtime) plus the compartment's libraries.  Compartments do not share
address spaces; all communication is shared-memory RPC, with the server
validating that the requested function pointer is a legal entry point —
the backend's stronger form of CFI (compartments can only be *left and
entered* at well-defined points).
"""

from __future__ import annotations

from repro.core.backends.base import IsolationBackend, register_backend
from repro.core.gates import EptRpcGate
from repro.hw.ept import AddressSpace, SharedWindow
from repro.hw.memory import Perm

#: Size of the inter-VM shared-memory window (the QEMU/KVM patch of the
#: paper adds "lightweight inter-VM shared memory", < 90 LoC).
SHARED_WINDOW_SIZE = 1 << 20


@register_backend
class EptBackend(IsolationBackend):
    mechanism = "vm-ept"
    loc = 1000
    single_address_space = False

    def __init__(self):
        self.window = None
        self.spaces = {}

    def setup_domains(self, instance):
        image = instance.image
        # One address space (VM) per compartment; boot cost per VM.
        for comp in image.compartments:
            comp.address_space = AddressSpace(comp.name)
            self.spaces[comp.index] = comp.address_space
            instance.clock.charge(instance.costs.vm_boot)

        for section in image.sections:
            perm = Perm.RX if section.kind == "text" else (
                Perm.R if section.kind == "rodata" else Perm.RW
            )
            region = instance.add_section_region(section, pkey=0, perm=perm)
            if section.compartment_index is None:
                # Globally shared sections are mapped everywhere.
                for space in self.spaces.values():
                    space.map(region)
            else:
                self.spaces[section.compartment_index].map(region)

        # The shared-memory window, mapped at the same address in every VM.
        window_region = instance.memory.add_region(
            ".ivshmem", SHARED_WINDOW_SIZE, perm=Perm.RW, pkey=0,
            compartment=None, kind="shared",
        )
        self.window = SharedWindow(
            window_region, [comp.address_space for comp in image.compartments],
        )
        instance.shared_window = self.window

        default = image.compartment_of("ukboot")
        instance.ctx.pkru = None
        instance.ctx.address_space = default.address_space

    def on_heap_created(self, instance, compartment, region):
        """Private heaps map into their VM only; the shared heap into all."""
        if compartment is None:
            for space in self.spaces.values():
                space.map(region)
        else:
            self.spaces[compartment.index].map(region)

    def on_stack_created(self, instance, compartment, stack_region,
                         dss_region):
        self.spaces[compartment.index].map(stack_region)
        if dss_region is not None:
            # The DSS is a sharing strategy over shared memory, so it is
            # visible to every VM (Section 4.1: "applicable to any
            # isolation mechanism that supports shared memory").
            for space in self.spaces.values():
                space.map(dss_region)

    def build_gates(self, instance):
        image = instance.image
        gates = {}
        for src, dst in self.all_pairs(image.compartments):
            gates[(src.index, dst.index)] = EptRpcGate(
                src, dst, instance.costs,
                window=self.window,
                legal_entries=image.legal_entries[dst.index],
            )
        return gates

    def install_hooks(self, instance):
        """Each VM's RPC server keeps a pool of worker threads; modelled
        as a per-compartment service counter the gates maintain."""

    def linker_rules(self, config):
        # One image per compartment: sections are per-VM, and the TCB is
        # duplicated into each.
        return [".text.%(comp)s", ".rodata.%(comp)s", ".data.%(comp)s",
                ".bss.%(comp)s", ".tcb.%(comp)s"]

    def transform_rules(self):
        return (
            "gate-to-ept-rpc",
            "shared-static-to-ivshmem",
            "shared-stack-to-ivshmem",
            "rpc-server-generation",
        )
