"""The no-isolation backend.

Used for single-compartment images and for "FlexOS without isolation"
baselines: all gates degrade to plain function calls, no PKRU or address
space is installed, and — per the paper's P4 ("you only pay for what you
get") — the result must perform identically to vanilla Unikraft, which
the Fig. 9/10 benchmarks verify.
"""

from __future__ import annotations

from repro.core.backends.base import IsolationBackend, register_backend
from repro.core.gates import FunctionCallGate
from repro.hw.memory import Perm


@register_backend
class NoIsolationBackend(IsolationBackend):
    mechanism = "none"
    loc = 0
    single_address_space = True

    def setup_domains(self, instance):
        for section in instance.image.sections:
            perm = Perm.RX if section.kind == "text" else (
                Perm.R if section.kind == "rodata" else Perm.RW
            )
            instance.add_section_region(section, pkey=0, perm=perm)
        # No PKRU, no address space: nothing to fault on.
        instance.ctx.pkru = None
        instance.ctx.address_space = None

    def build_gates(self, instance):
        gates = {}
        for src, dst in self.all_pairs(instance.image.compartments):
            gates[(src.index, dst.index)] = FunctionCallGate(
                src, dst, instance.costs,
            )
        return gates

    def transform_rules(self):
        return ("gate-to-function-call",)
