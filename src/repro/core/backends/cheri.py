"""CHERI backend sketch (Section 4.3).

The paper sketches how hardware capabilities would slot into the backend
API: boot-time hooks initialise CHERI support, scheduler hooks perform
capability-aware context switching, gates use ``CInvoke`` and sentry
capabilities, and the ``__shared`` annotation transforms into
``__capability`` under the hybrid pointer model.  This backend implements
exactly that sketch over the simulated hardware — enough to build and run
images, demonstrating P2 (adding a mechanism touches only the backend).

Like the paper's sketch, it is *not* a full CHERI model: gates charge the
CInvoke cost and enforce entry points, but per-pointer capability checks
on data accesses are not modelled (the simulation installs neither a
PKRU nor an address space, so cross-compartment data reads do not fault
under this backend).
"""

from __future__ import annotations

from repro.core.backends.base import IsolationBackend, register_backend
from repro.core.gates import CheriGate
from repro.hw.memory import Perm


@register_backend
class CheriBackend(IsolationBackend):
    mechanism = "cheri"
    loc = 1100
    single_address_space = True

    def setup_domains(self, instance):
        for section in instance.image.sections:
            perm = Perm.RX if section.kind == "text" else (
                Perm.R if section.kind == "rodata" else Perm.RW
            )
            instance.add_section_region(section, pkey=0, perm=perm)
        # Hybrid model: the default address space stays; capability checks
        # happen at gate boundaries (the simulation keeps PKRU unset).
        instance.ctx.pkru = None
        instance.ctx.address_space = None

    def build_gates(self, instance):
        gates = {}
        for src, dst in self.all_pairs(instance.image.compartments):
            gates[(src.index, dst.index)] = CheriGate(
                src, dst, instance.costs,
            )
        return gates

    def install_hooks(self, instance):
        def on_thread_create(thread):
            # Capability-aware thread initialisation (sketch: nothing to
            # switch in the simulation, but the hook point is exercised).
            thread.cheri_initialised = True

        instance.sched.register_hook("thread_create", on_thread_create)

    def transform_rules(self):
        return ("gate-to-cinvoke", "shared-to-__capability")
