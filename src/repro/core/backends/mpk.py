"""Intel MPK isolation backend (Section 4.1).

One protection key per compartment, one key reserved for the shared
communication domain.  Private ``.data``/``.rodata``/``.bss`` sections per
compartment are stamped with the compartment's key by the boot code.  Each
compartment has a private heap; a shared heap carries communications.

Gates come in two flavours: the full HODOR-style gate (register isolation
plus one call stack per thread per compartment, found via a stack
registry) and the light ERIM-style gate (PKRU swap only).

Core-library hooks: the scheduler's ``thread_create`` hook "switches a
newly created thread to the right protection domain" — here it carves the
thread's home-compartment stack (doubled with a DSS when the image's
sharing strategy asks for one).
"""

from __future__ import annotations

from repro.core.backends.base import IsolationBackend, register_backend
from repro.core.gates import MpkFullGate, MpkLightGate
from repro.hw.memory import Perm
from repro.hw.mpk import PKRU, PkeyAllocator


@register_backend
class MpkBackend(IsolationBackend):
    mechanism = "intel-mpk"
    loc = 1400
    single_address_space = True

    def __init__(self):
        self.pkeys = PkeyAllocator()
        self.shared_pkey = None
        #: name -> (pkey, frozenset of compartment indices) for the
        #: restricted shared domains carved from leftover keys.
        self.restricted_domains = {}

    def setup_domains(self, instance):
        image = instance.image
        # One key per compartment; key 0 stays the TCB/default key for the
        # default compartment, in line with the boot code owning it.
        for comp in image.compartments:
            if comp.spec.default:
                comp.pkey = 0
            else:
                comp.pkey = self.pkeys.allocate(comp.name)
        # One key for the shared communication domain.
        self.shared_pkey = self.pkeys.allocate("shared")
        for comp in image.compartments:
            comp.shared_pkeys = (self.shared_pkey,)
        instance.shared_pkey = self.shared_pkey

        # Boot-time protection of per-compartment sections (Section 4.1,
        # "Data Ownership").
        for section in image.sections:
            comp = image.compartments[section.compartment_index] \
                if section.compartment_index is not None else None
            pkey = self.shared_pkey if comp is None else comp.pkey
            perm = Perm.RX if section.kind == "text" else (
                Perm.R if section.kind == "rodata" else Perm.RW
            )
            instance.add_section_region(section, pkey=pkey, perm=perm)

        # The boot CPU starts in the default compartment.
        default = image.compartment_of("ukboot")
        instance.ctx.pkru = PKRU(allowed=default.allowed_keys())
        instance.ctx.address_space = None

    def build_gates(self, instance):
        image = instance.image
        light = image.config.mpk_gate == "light"
        gates = {}
        for src, dst in self.all_pairs(image.compartments):
            if light:
                gates[(src.index, dst.index)] = MpkLightGate(
                    src, dst, instance.costs,
                )
            else:
                gates[(src.index, dst.index)] = MpkFullGate(
                    src, dst, instance.costs,
                    stack_provider=instance.provide_stack,
                )
        return gates

    def install_hooks(self, instance):
        """Scheduler hook: place new threads in their home domain.

        Stack carving itself is the instance's generic thread-create
        hook; the MPK-specific part — stamping the stack with the home
        compartment's protection key and doubling it with a shared-domain
        DSS — happens inside ``provide_stack`` via the pkeys this backend
        assigned at boot.  The hook here records the domain assignment.
        """

        def on_thread_create(thread):
            comp = instance.image.compartments[thread.home_compartment]
            thread.mpk_domain = comp.pkey

        instance.sched.register_hook("thread_create", on_thread_create)

    def create_restricted_domain(self, instance, name, libraries):
        """Carve a shared domain visible only to ``libraries``' comps.

        Uses one of the leftover protection keys ("If the image features
        less than 15 compartments, FlexOS uses remaining keys for
        additional shared domains between restricted groups").  Returns
        the domain's heap allocator.
        """
        image = instance.image
        members = frozenset(
            image.compartment_of(lib).index for lib in libraries
        )
        pkey = self.pkeys.allocate("restricted:%s" % name)
        for comp in image.compartments:
            if comp.index in members:
                comp.shared_pkeys = tuple(comp.shared_pkeys) + (pkey,)
        self.restricted_domains[name] = (pkey, members)
        heap = instance.memmgr.create_restricted_shared_heap(name, pkey)
        # The boot CPU's PKRU must reflect its compartment's new grant.
        boot_comp = image.compartments[instance.ctx.compartment]
        if instance.ctx.pkru is not None and \
                boot_comp.index in members:
            instance.ctx.pkru.allow(pkey)
        return heap

    def transform_rules(self):
        return (
            "gate-to-mpk",
            "shared-static-to-shared-section",
            "shared-stack-to-dss",
            "shared-heap-to-shared-alloc",
        )
