"""Intel SGX isolation backend.

Listed as future work in the paper ("we intend to add more isolation
backend implementations to FlexOS including CHERI and SGX"); implemented
here to demonstrate P2 once more: a new mechanism is gates + hooks +
linker rules + transformations + registration — no redesign.

Model: every non-default compartment is an *enclave*.  Enclave memory
(the EPC) is invisible to the untrusted world, while enclave code can
read untrusted memory — the asymmetric visibility SGX hardware enforces.
That asymmetry maps onto per-enclave address spaces: the default
compartment's context has no enclave regions mapped; an enclave's context
maps both its own EPC regions and all untrusted regions.  Transitions are
EENTER/EEXIT world switches, an order of magnitude above MPK gates, and
enclave entry points are fixed at build time (the ECALL table — SGX's
native form of the gate-level CFI FlexOS relies on).
"""

from __future__ import annotations

from repro.core.backends.base import IsolationBackend, register_backend
from repro.core.gates import Gate
from repro.hw.ept import AddressSpace
from repro.hw.memory import Perm


class SgxEcallGate(Gate):
    """EENTER into the enclave, EEXIT out (or OCALL in reverse)."""

    kind = "sgx-ecall"

    def one_way_cost(self):
        return self.costs.gate_one_way("intel-sgx")

    def _enter(self, ctx):
        # The enclave can see everything; the world switch changes the
        # effective address space to the enclave's view.
        state = ctx.address_space
        ctx.address_space = self.dst.address_space
        # EPC accesses pay the memory-encryption-engine tax.
        ctx.clock.charge(self.costs.sgx_epc_touch)
        return state

    def _leave(self, ctx, state):
        ctx.address_space = state


@register_backend
class SgxBackend(IsolationBackend):
    mechanism = "intel-sgx"
    loc = 1800  # enclave runtime + ECALL table generation
    single_address_space = True  # one process; EPC carved out of its AS

    def __init__(self):
        self.untrusted_view = None
        self.enclave_views = {}

    def setup_domains(self, instance):
        image = instance.image
        self.untrusted_view = AddressSpace("untrusted")
        for comp in image.compartments:
            if not comp.spec.default:
                comp.address_space = AddressSpace("enclave-%s" % comp.name)
                self.enclave_views[comp.index] = comp.address_space

        for section in image.sections:
            perm = Perm.RX if section.kind == "text" else (
                Perm.R if section.kind == "rodata" else Perm.RW
            )
            region = instance.add_section_region(section, pkey=0, perm=perm)
            self._map_region(image, section.compartment_index, region)

        default = image.compartment_of("ukboot")
        default.address_space = self.untrusted_view
        instance.ctx.pkru = None
        instance.ctx.address_space = self.untrusted_view

    def _map_region(self, image, compartment_index, region):
        """Apply SGX's asymmetric visibility to one region."""
        if compartment_index is None or \
                image.compartments[compartment_index].spec.default:
            # Untrusted memory: visible to the world and to every enclave.
            self.untrusted_view.map(region)
            for view in self.enclave_views.values():
                view.map(region)
        else:
            # EPC: visible only inside the owning enclave.
            self.enclave_views[compartment_index].map(region)

    def on_heap_created(self, instance, compartment, region):
        index = None if compartment is None or compartment.spec.default \
            else compartment.index
        self._map_region(instance.image, index, region)

    def on_stack_created(self, instance, compartment, stack_region,
                         dss_region):
        index = None if compartment.spec.default else compartment.index
        self._map_region(instance.image, index, stack_region)
        if dss_region is not None:
            # The DSS is shared memory: untrusted, hence world-visible.
            self._map_region(instance.image, None, dss_region)

    def build_gates(self, instance):
        gates = {}
        for src, dst in self.all_pairs(instance.image.compartments):
            gates[(src.index, dst.index)] = SgxEcallGate(
                src, dst, instance.costs,
            )
        return gates

    def install_hooks(self, instance):
        def on_thread_create(thread):
            # Threads bind to an enclave's TCS slot at creation; the
            # generic hook already carved the stack.
            thread.tcs_bound = True

        instance.sched.register_hook("thread_create", on_thread_create)

    def transform_rules(self):
        return (
            "gate-to-ecall",
            "ecall-table-generation",
            "shared-to-untrusted-buffer",
        )
