"""The backend API every isolation mechanism implements."""

from __future__ import annotations

from repro.errors import ConfigError

BACKEND_REGISTRY = {}


def register_backend(cls):
    """Class decorator: register a backend under its ``mechanism`` name."""
    if not getattr(cls, "mechanism", None):
        raise ConfigError("backend %r lacks a mechanism name" % cls)
    BACKEND_REGISTRY[cls.mechanism] = cls
    return cls


def get_backend(mechanism):
    """Instantiate the backend registered for ``mechanism``."""
    cls = BACKEND_REGISTRY.get(mechanism)
    if cls is None:
        raise ConfigError(
            "no isolation backend registered for %r (have: %s)"
            % (mechanism, sorted(BACKEND_REGISTRY))
        )
    return cls()


class IsolationBackend:
    """Contract between FlexOS and one isolation technology.

    The five steps of Section 3.2 map onto:

    1. gates            -> :meth:`build_gates`
    2. core-lib hooks   -> :meth:`install_hooks`
    3. linker scripts   -> :meth:`linker_rules`
    4. transformations  -> :meth:`transform_rules`
    5. registration     -> :func:`register_backend`

    Plus :meth:`setup_domains`, the boot-time step that gives each
    compartment its runtime protection identity.
    """

    #: Mechanism name as used in configuration files.
    mechanism = None

    #: Backend implementation size (paper Section 4: MPK 1400 LoC, EPT
    #: 1000 LoC) — used by the TCB accounting.
    loc = 0

    #: Whether compartments share one address space.
    single_address_space = True

    def setup_domains(self, instance):
        """Assign keys/address spaces and create section regions."""
        raise NotImplementedError

    def build_gates(self, instance):
        """Return the gate table {(src_index, dst_index): Gate}."""
        raise NotImplementedError

    def install_hooks(self, instance):
        """Register scheduler/boot hooks (default: none)."""

    def on_heap_created(self, instance, compartment, region):
        """Called for every heap region (``compartment`` None = shared)."""

    def on_stack_created(self, instance, compartment, stack_region,
                         dss_region):
        """Called for every thread stack (and DSS, when present)."""

    def linker_rules(self, config):
        """Section templates, e.g. [".data.%(comp)s", ...]."""
        return [".text.%(comp)s", ".rodata.%(comp)s", ".data.%(comp)s",
                ".bss.%(comp)s"]

    def transform_rules(self):
        """Names of the Coccinelle-style recipes this backend installs."""
        return ()

    # -- shared helpers ------------------------------------------------------
    @staticmethod
    def all_pairs(compartments):
        for src in compartments:
            for dst in compartments:
                if src.index != dst.index:
                    yield src, dst
