"""Trusted-computing-base accounting (Section 3.3).

The TCB is the set of components whose compromise defeats every isolation
mechanism: early boot code, the memory manager, the scheduler, the
first-level interrupt handler, and the isolation backend itself.  The
paper reports "around 3000 LoC in the case of Intel MPK, and even less
for VM/EPT"; this module computes the same inventory for a configuration,
plus the hardware/compiler trust statement.
"""

from __future__ import annotations

from repro.core.backends import get_backend
from repro.kernel.lib import LIBRARY_REGISTRY

#: The five TCB component categories of Section 3.3.
TCB_COMPONENTS = (
    "early boot code",
    "memory manager",
    "scheduler",
    "first-level interrupt handler",
    "isolation backend",
)

#: Micro-libraries in the TCB (the core libraries).
TCB_LIBRARIES = ("ukboot", "ukalloc", "uksched", "ukintr")

#: Toolchain components explicitly *outside* the TCB (compile-time checks
#: catch invalid transformations).
OUTSIDE_TCB = ("Coccinelle / transformation pass", "linker-script generator")

#: Always-trusted substrate.
TRUSTED_SUBSTRATE = ("hardware", "compiler")


class TcbReport:
    """The TCB inventory of one configuration."""

    def __init__(self, config):
        self.config = config
        backend = get_backend(config.mechanism)
        self.backend_loc = backend.loc
        self.core_loc = sum(
            LIBRARY_REGISTRY[name].loc for name in TCB_LIBRARIES
        )
        self.duplicated = not backend.single_address_space
        #: With EPT, the TCB is duplicated per compartment (one VM each),
        #: but the *unique* trusted code is what the paper counts.
        self.copies = (
            config.n_compartments if self.duplicated else 1
        )

    @property
    def unique_loc(self):
        """Unique trusted LoC (the paper's headline number)."""
        return self.core_loc + self.backend_loc

    @property
    def resident_loc(self):
        """Trusted LoC resident across the whole deployment."""
        return self.core_loc * self.copies + self.backend_loc

    def summary(self):
        return {
            "mechanism": self.config.mechanism,
            "components": TCB_COMPONENTS,
            "core_loc": self.core_loc,
            "backend_loc": self.backend_loc,
            "unique_loc": self.unique_loc,
            "duplicated_per_vm": self.duplicated,
            "outside_tcb": OUTSIDE_TCB,
            "trusted_substrate": TRUSTED_SUBSTRATE,
        }

    def __repr__(self):
        return "TcbReport(%s: %d LoC%s)" % (
            self.config.mechanism, self.unique_loc,
            ", duplicated per VM" if self.duplicated else "",
        )
