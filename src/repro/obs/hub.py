"""The telemetry hub: one read API over the streaming observability.

:class:`TelemetryHub` composes the streaming half of ``repro.obs`` —
windowed counters (:mod:`repro.obs.timeseries`), request spans
(:mod:`repro.obs.spans`), SLO burn rates and slow-request exemplars
(:mod:`repro.obs.slo`) — behind one object the load harness feeds and a
policy loop reads:

* :meth:`tracer` hands out a :class:`~repro.obs.Tracer` whose metrics
  registry tees every counter into the windowed telemetry and whose
  span hooks drive the tracker; install it for the run
  (``run_load(..., hub=hub)`` does this).
* :meth:`snapshot` is the deterministic, JSON-serialisable state dump —
  rerun-byte-identical for a seeded workload, which ``BENCH_tail.json``
  and the ``tail-smoke`` CI job pin.
* :meth:`evaluator_input` is the read shape for the ROADMAP's future
  ``live`` explorer evaluator: per-window arrival/latency/burn series
  plus the aggregate latency decomposition, i.e. *why* the tail is
  where it is (queueing vs. gate crossings vs. app work), which is the
  signal that picks between isolation layouts at run time.

The hub never charges the virtual clock (tracer rules) and binds the
instance clock late (:meth:`bind_clock`), because the clock exists only
after the instance under test boots.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SloEvaluator, SlowSampler
from repro.obs.spans import SpanTracker
from repro.obs.timeseries import (
    DEFAULT_RING,
    DEFAULT_WINDOW_CYCLES,
    WindowedTelemetry,
)
from repro.obs.tracer import Tracer

#: Snapshot schema version for the hub's own snapshot payloads.
HUB_SCHEMA_VERSION = 1


class TelemetryHub:
    """Windowed telemetry + spans + SLOs behind one read API."""

    def __init__(self, window_cycles=DEFAULT_WINDOW_CYCLES,
                 ring=DEFAULT_RING, slo_targets=(),
                 slow_threshold_cycles=None, sampler_capacity=16,
                 clock=None, slo_window_cycles=None):
        self.clock = clock
        self.timeseries = WindowedTelemetry(
            clock=clock, window_cycles=window_cycles, ring=ring,
        )
        self.metrics = MetricsRegistry(timeseries=self.timeseries)
        self.spans = SpanTracker(clock=clock)
        self.spans.on_complete = self._on_span_complete
        # SLO windows may be wider or narrower than telemetry windows
        # (and need not divide evenly): evaluator_input() maps between
        # the two by cycle range, not by index arithmetic.
        self.slos = [SloEvaluator(target,
                                  window_cycles=(slo_window_cycles
                                                 or window_cycles))
                     for target in slo_targets]
        if slow_threshold_cycles is None and self.slos:
            # Default the exemplar threshold to the tightest SLO: the
            # samples are then exactly the requests burning budget.
            slow_threshold_cycles = min(
                evaluator.target.threshold_cycles
                for evaluator in self.slos
            )
        self.sampler = (
            SlowSampler(slow_threshold_cycles, capacity=sampler_capacity)
            if slow_threshold_cycles is not None else None
        )

    def bind_clock(self, clock):
        """Attach the instance clock (call after boot, before traffic)."""
        self.clock = clock
        self.timeseries.bind_clock(clock)
        self.spans.bind_clock(clock)

    def tracer(self, keep_events=False):
        """A tracer wired into this hub; install it for the run."""
        tracer = Tracer(clock=self.clock, metrics=self.metrics,
                        keep_events=keep_events)
        tracer.spans = self.spans
        return tracer

    # -- span sink ---------------------------------------------------------------
    def _on_span_complete(self, span):
        ts = span.complete_cycles
        telemetry = self.timeseries
        telemetry.bump("requests.completed", 1.0, ts=ts)
        telemetry.bump("requests.queue_cycles", span.queue_cycles, ts=ts)
        telemetry.bump("requests.gate_cycles", span.gate_cycles, ts=ts)
        telemetry.bump("requests.gate_crossings",
                       float(span.gate_crossings), ts=ts)
        telemetry.bump("requests.app_cycles", span.app_cycles, ts=ts)
        telemetry.observe("request.latency_cycles", span.latency_cycles,
                          ts=ts)
        for evaluator in self.slos:
            evaluator.record(span)
        if self.sampler is not None:
            self.sampler.offer(span)

    # -- read API ----------------------------------------------------------------
    def decomposition(self):
        """Aggregate latency split with per-part shares of total latency."""
        totals = self.spans.summary()["totals"]
        latency = totals["latency_cycles"]
        shares = {
            part: (totals[part] / latency if latency > 0 else 0.0)
            for part in ("queue_cycles", "gate_cycles", "app_cycles")
        }
        return {"totals": totals, "shares": shares}

    def snapshot(self):
        """Deterministic JSON-serialisable dump of the whole hub."""
        return {
            "schema": HUB_SCHEMA_VERSION,
            "timeseries": self.timeseries.snapshot(),
            "requests": self.spans.summary(),
            "decomposition": self.decomposition(),
            "slo": [evaluator.snapshot() for evaluator in self.slos],
            "slow_samples": (self.sampler.snapshot()
                             if self.sampler is not None else None),
        }

    def evaluator_input(self):
        """The windowed series a ``live`` explorer evaluator consumes.

        One row per retained telemetry window: request count, latency
        stats, the decomposition counters, and each SLO's burn in that
        window — plus run-level aggregates.  This is the contract the
        ROADMAP's online re-exploration policy loop ranks layouts by.
        """
        rows = []
        for window in self.timeseries.windows():
            stats = window.latency.get("request.latency_cycles")
            row = {
                "index": window.index,
                "requests": window.counters.get("requests.completed", 0.0),
                "queue_cycles": window.counters.get(
                    "requests.queue_cycles", 0.0),
                "gate_cycles": window.counters.get(
                    "requests.gate_cycles", 0.0),
                "gate_crossings": window.counters.get(
                    "requests.gate_crossings", 0.0),
                "app_cycles": window.counters.get(
                    "requests.app_cycles", 0.0),
                "latency_max_cycles": stats[3] if stats else 0.0,
                "latency_mean_cycles": (stats[1] / stats[0]
                                        if stats else 0.0),
                "burn": {
                    evaluator.target.name: evaluator.burn_over(
                        window.index * self.timeseries.window_cycles,
                        (window.index + 1) * self.timeseries.window_cycles,
                    )
                    for evaluator in self.slos
                },
            }
            rows.append(row)
        return {
            "window_cycles": self.timeseries.window_cycles,
            "windows": rows,
            "decomposition": self.decomposition(),
            "slo": {
                evaluator.target.name: {
                    "overall_burn": evaluator.overall_burn,
                    "met": evaluator.met,
                    "target": evaluator.target.to_dict(),
                }
                for evaluator in self.slos
            },
        }

    # -- rendering ---------------------------------------------------------------
    def _us(self, cycles):
        if self.clock is None:
            return None
        return self.clock.cycles_to_ns(cycles) / 1e3

    def tail_report(self, headline=None, max_windows=12, max_samples=3):
        """Human-readable tail report (the ``obs tail`` CLI output)."""
        lines = []
        head = ", ".join("%s=%s" % item for item in (headline or {}).items())
        lines.append("== obs tail%s ==" % ((": " + head) if head else ""))
        summary = self.spans.summary()
        decomposition = self.decomposition()
        totals = decomposition["totals"]
        shares = decomposition["shares"]
        lines.append(
            "%d requests completed (%d claimed, %d migrations, "
            "%d wake-ups)" % (
                summary["completed"], summary["claimed"],
                summary["migrations"], summary["wakeups"]))
        lines.append("latency decomposition (totals over all requests):")
        for part in ("queue_cycles", "gate_cycles", "app_cycles"):
            label = part.split("_")[0]
            lines.append("  %-6s %14.0f cycles  %5.1f%%" % (
                label, totals[part], 100.0 * shares[part]))
        lines.append("  %-6s %14.0f cycles" % (
            "total", totals["latency_cycles"]))
        windows = self.timeseries.windows()
        if windows:
            lines.append("")
            lines.append(
                "last %d windows of %d (width %.0f cycles; %d evicted, "
                "%d samples dropped):" % (
                    min(max_windows, len(windows)), len(windows),
                    self.timeseries.window_cycles, self.timeseries.evicted,
                    self.timeseries.dropped))
            lines.append("  %8s %9s %14s %14s" % (
                "window", "requests", "mean lat (cyc)", "max lat (cyc)"))
            for window in windows[-max_windows:]:
                stats = window.latency.get("request.latency_cycles")
                lines.append("  %8d %9.0f %14.0f %14.0f" % (
                    window.index,
                    window.counters.get("requests.completed", 0.0),
                    stats[1] / stats[0] if stats else 0.0,
                    stats[3] if stats else 0.0))
        for evaluator in self.slos:
            snap = evaluator.snapshot()
            worst = evaluator.worst_window()
            lines.append("")
            lines.append(
                "SLO %s: %s (burn %.2f, %d good / %d bad%s)" % (
                    evaluator.target.name,
                    "met" if snap["met"] else "VIOLATED",
                    snap["overall_burn"], snap["good"], snap["bad"],
                    ", worst window %d at burn %.2f" % worst
                    if worst else ""))
        if self.sampler is not None and self.sampler.samples:
            lines.append("")
            lines.append("slowest requests (of %d over threshold):"
                         % self.sampler.admitted)
            for span in self.sampler.samples[:max_samples]:
                decomp = span.decomposition()
                lines.append(
                    "  %-16s lat=%.0f queue=%.0f gate=%.0f app=%.0f "
                    "crossings=%d thread=%s core=%s" % (
                        span.name, decomp["latency_cycles"],
                        decomp["queue_cycles"], decomp["gate_cycles"],
                        decomp["app_cycles"], span.gate_crossings,
                        span.thread, span.core))
        return "\n".join(lines)

    def __repr__(self):
        return "TelemetryHub(%d spans, %d windows, %d slos)" % (
            len(self.spans.spans), len(self.timeseries.windows()),
            len(self.slos),
        )
