"""Request spans: per-request latency decomposition on the virtual clock.

The load harness (:mod:`repro.bench.load`) measures a request's latency
as *completion minus scheduled arrival* — the open-loop discipline.  A
:class:`RequestSpan` splits that same interval into the three parts a
tail-latency explorer has to tell apart:

* **queueing** — arrival until the serving thread actually begins the
  request, plus reply delivery after service; the run-queue component is
  additionally broken out via :attr:`~repro.kernel.thread.Thread.ready_at_cycles`
  (:attr:`RequestSpan.dispatch_wait_cycles`);
* **gate** — the exact crossing overhead of every gate taken while
  serving, measured by :meth:`repro.core.gates.Gate._call_once` as the
  cycles charged entering and leaving each domain (*not* span durations,
  which include callee work);
* **app** — the residual: service time minus gate overhead.

The decomposition identity ``queue + gate + app == latency`` holds by
construction (each term is defined from the same four clock readings),
so the *substantive* invariants :meth:`RequestSpan.check` enforces are
the ones that could actually break: every part is non-negative, the
clock readings are ordered, and gate overhead never exceeds service time
(crossings are counted once, on the serving thread, inside the service
interval).

Span context travels with the request, not the control flow: a
:class:`SpanTracker` *feed* is a FIFO of injected spans keyed by the
serving thread's name (several threads may share one feed — a worker
pool draining a shared queue).  When a serving thread makes its first
entry-point call into the feed's library (hooked in
:meth:`repro.core.image.Router.route`, so it works for direct
same-compartment calls and gated calls alike), the tracker claims the
next span from the feed and pins it to the thread
(:attr:`Thread.span`); the claim therefore survives ``Sleep``/``Block``
reschedules and SMP core migrations in between requests, and the
harness completes the span when the reply is observed.  FIFO claiming is
sound because every transport in the tree delivers requests to a given
serving thread in injection order (per-connection TCP byte streams, the
sqlite worker queue).

When the entry-point call returns, the span *lingers* on the thread for
the rest of the run-to-yield slice: the serve loops send the reply right
after the app call and before yielding, so the reply's transport
crossings (e.g. ``redis -> lwip`` for the RESP bytes) book to the
request that produced the reply, extending its service window.  The
linger window closes at the next scheduler dispatch (any thread — the
slice is over), the thread's next claim, or the span's completion,
whichever the tracker sees first; because it never outlives one slice,
the clock inside it is strictly monotonic even under SMP.  Crossings
made while *polling* for a request that has not arrived yet book to no
span — that isolation tax is visible in the windowed ``gate.*``
counters and surfaces in the span as queueing delay.

SMP and causal order: slices on different virtual cores *overlap* in
virtual time (:mod:`repro.kernel.smp` warps the shared clock to the
earliest core between slices), so a cross-thread handoff can read a
core-local clock that sits behind the upstream event — the reply reaper
may observe a completion "before" the server's send, even though Python
execution order (and hence causality) is correct.  The tracker clamps
the two cross-thread handoffs — claim (``serve_begin >= arrival``) and
completion (``complete >= serve_end``) — to causal order, counts the
clamps (:attr:`SpanTracker.causality_clamps`, :attr:`RequestSpan.clamped`),
and leaves the harness's own raw latency lists untouched.  Under the
serial scheduler the clock is monotonic and no clamp ever fires.

Nothing here charges the clock; see :mod:`repro.obs.tracer` for the
zero-perturbation rules.
"""

from __future__ import annotations

from collections import deque

from repro.errors import ReproError

#: Per-span bound on retained child gate records (a span tree of more
#: crossings keeps counting but stops storing nodes).
MAX_CHILDREN = 512

#: Tolerance for the decomposition identity under float re-association.
_EPS = 1e-6


class RequestSpan:
    """One request's life: arrival, service, completion, decomposition."""

    __slots__ = (
        "span_id", "name", "feed", "arrival_cycles", "serve_begin_cycles",
        "serve_end_cycles", "complete_cycles", "gate_cycles",
        "gate_crossings", "children", "dropped_children", "thread",
        "core", "migrated", "wakeups", "ready_at_cycles", "status",
        "clamped", "_linger",
    )

    def __init__(self, span_id, name, feed, arrival_cycles):
        self.span_id = span_id
        self.name = name
        self.feed = feed
        self.arrival_cycles = arrival_cycles
        self.serve_begin_cycles = None
        self.serve_end_cycles = None
        self.complete_cycles = None
        #: Exact gate crossing overhead charged while serving.
        self.gate_cycles = 0.0
        self.gate_crossings = 0
        #: Child gate records: the span tree the slow sampler retains.
        self.children = []
        self.dropped_children = 0
        self.thread = None              # serving thread name
        self.core = None                # core the service slice ran on
        self.migrated = False           # thread changed cores since its
        #                                 previous claim
        self.wakeups = 0                # serving-thread wake-ups since
        #                                 its previous claim
        self.ready_at_cycles = None     # thread.ready_at_cycles at claim
        self.status = "open"
        #: A cross-thread handoff read a core-local clock behind the
        #: upstream event (SMP slice overlap) and was clamped to causal
        #: order; see the module docstring.
        self.clamped = False
        #: The entry-point call returned but the span still rides the
        #: serving thread: crossings in the remainder of the slice (the
        #: reply's transport work) book here and extend ``serve_end``.
        self._linger = False

    # -- lifecycle (driven by the tracker) --------------------------------------
    def _serve_begin(self, now, thread, core, migrated, wakeups):
        self.serve_begin_cycles = now
        self.thread = thread.name
        self.core = core
        self.migrated = migrated
        self.wakeups = wakeups
        self.ready_at_cycles = thread.ready_at_cycles

    def _serve_end(self, now):
        self.serve_end_cycles = now

    def add_gate(self, label, kind, begin, duration, overhead, depth,
                 status):
        self.gate_crossings += 1
        self.gate_cycles += overhead
        if len(self.children) < MAX_CHILDREN:
            self.children.append({
                "label": label, "kind": kind, "begin": begin,
                "dur": duration, "overhead": overhead, "depth": depth,
                "status": status,
            })
        else:
            self.dropped_children += 1

    # -- the decomposition -------------------------------------------------------
    @property
    def claimed(self):
        return self.serve_begin_cycles is not None

    @property
    def completed(self):
        return self.complete_cycles is not None

    @property
    def latency_cycles(self):
        return self.complete_cycles - self.arrival_cycles

    @property
    def service_cycles(self):
        """Time on the serving thread, entry to return of the app call."""
        if not self.claimed:
            return 0.0
        return self.serve_end_cycles - self.serve_begin_cycles

    @property
    def queue_pre_cycles(self):
        """Arrival until the serving thread begins the request."""
        if not self.claimed:
            return self.latency_cycles
        return self.serve_begin_cycles - self.arrival_cycles

    @property
    def queue_post_cycles(self):
        """Service end until the reply is observed complete."""
        if not self.claimed:
            return 0.0
        return self.complete_cycles - self.serve_end_cycles

    @property
    def queue_cycles(self):
        return self.queue_pre_cycles + self.queue_post_cycles

    @property
    def app_cycles(self):
        """Residual service time once gate overhead is taken out."""
        return self.service_cycles - self.gate_cycles

    @property
    def dispatch_wait_cycles(self):
        """Run-queue wait: the later of arrival and the serving thread's
        last ``ready_at_cycles`` until the service slice began."""
        if not self.claimed:
            return 0.0
        since = max(self.arrival_cycles, self.ready_at_cycles)
        return max(0.0, self.serve_begin_cycles - since)

    def decomposition(self):
        """The three-way split whose parts sum to the measured latency."""
        return {
            "queue_cycles": self.queue_cycles,
            "gate_cycles": self.gate_cycles,
            "app_cycles": self.app_cycles,
            "latency_cycles": self.latency_cycles,
        }

    def check(self):
        """Assert the decomposition invariants; raises on violation."""
        if not self.completed:
            raise ReproError("span %s checked before completion"
                             % self.span_id)
        if self.claimed:
            ordered = (self.arrival_cycles <= self.serve_begin_cycles
                       <= self.serve_end_cycles
                       <= self.complete_cycles + _EPS)
            if not ordered:
                raise ReproError(
                    "span %s clock readings out of order: %r" % (
                        self.span_id,
                        (self.arrival_cycles, self.serve_begin_cycles,
                         self.serve_end_cycles, self.complete_cycles),
                    ))
        parts = (self.queue_pre_cycles, self.queue_post_cycles,
                 self.gate_cycles, self.app_cycles)
        if min(parts) < -_EPS:
            raise ReproError(
                "span %s has a negative part: queue_pre=%r queue_post=%r "
                "gate=%r app=%r" % ((self.span_id,) + parts))
        total = self.queue_cycles + self.gate_cycles + self.app_cycles
        latency = self.latency_cycles
        if abs(total - latency) > _EPS * max(1.0, abs(latency)):
            raise ReproError(
                "span %s decomposition does not sum: %r != %r"
                % (self.span_id, total, latency))
        return True

    def to_dict(self):
        """JSON-serialisable span (the full tree, for slow samples)."""
        payload = {
            "span_id": self.span_id,
            "name": self.name,
            "feed": self.feed,
            "status": self.status,
            "thread": self.thread,
            "core": self.core,
            "migrated": self.migrated,
            "clamped": self.clamped,
            "wakeups": self.wakeups,
            "arrival_cycles": self.arrival_cycles,
            "serve_begin_cycles": self.serve_begin_cycles,
            "serve_end_cycles": self.serve_end_cycles,
            "complete_cycles": self.complete_cycles,
            "dispatch_wait_cycles": self.dispatch_wait_cycles,
            "gate_crossings": self.gate_crossings,
            "dropped_children": self.dropped_children,
            "children": list(self.children),
        }
        payload.update(self.decomposition())
        return payload

    def __repr__(self):
        state = "completed" if self.completed else (
            "claimed" if self.claimed else "pending")
        return "RequestSpan(%s %s %s)" % (self.span_id, self.name, state)


class _Feed:
    """One FIFO of spans awaiting service by a set of threads."""

    __slots__ = ("name", "library", "pending", "inflight")

    def __init__(self, name, library):
        self.name = name
        self.library = library
        self.pending = deque()      # injected, not yet claimed
        self.inflight = deque()     # injected, not yet completed


class SpanTracker:
    """Claims, measures, and completes request spans.

    Wire-up: set :attr:`repro.obs.tracer.Tracer.spans` to a tracker (the
    :class:`~repro.obs.hub.TelemetryHub` does this) and the tracer's
    entry/gate/scheduler hooks drive it; the harness injects spans into
    feeds and completes them as replies are observed.
    """

    def __init__(self, clock=None):
        self.clock = clock
        self._feeds = {}            # feed name -> _Feed
        self._threads = {}          # thread name -> _Feed
        #: Completed spans in completion order.
        self.spans = []
        #: Optional callable(span) fired on completion (the hub's sink).
        self.on_complete = None
        #: Wake-ups per thread name since that thread's last claim.
        self._wakes = {}
        #: Last core each thread name was dispatched on.
        self._thread_cores = {}
        self._current_core = None
        #: The one span (at most) in its post-entry linger window — the
        #: tail of the serving slice after the entry-point returned,
        #: during which reply-transport crossings still book to it.  The
        #: window closes at the next scheduler dispatch (any thread), the
        #: thread's next claim, or the span's completion.
        self._lingering = None
        self._linger_thread = None
        self._next_id = 0
        self.claims = 0
        self.migrations = 0
        self.unclaimed_completions = 0
        #: Cross-thread handoffs whose raw timestamp ran behind the
        #: upstream event under SMP slice overlap (clamped to causal
        #: order; always 0 under the serial scheduler).
        self.causality_clamps = 0

    def bind_clock(self, clock):
        self.clock = clock

    # -- feeds -------------------------------------------------------------------
    def register_feed(self, name, library, threads=None):
        """Create a span feed served by ``threads`` (default: ``name``).

        ``library`` is the claim trigger: the first entry-point call a
        feed thread makes into that library claims the feed's next span.
        """
        if name in self._feeds:
            raise ReproError("span feed %r already registered" % name)
        feed = self._feeds[name] = _Feed(name, library)
        for thread_name in (threads if threads is not None else (name,)):
            if thread_name in self._threads:
                raise ReproError(
                    "thread %r already serves feed %r"
                    % (thread_name, self._threads[thread_name].name))
            self._threads[thread_name] = feed
        return feed

    def inject(self, feed_name, name=None, arrival_cycles=None):
        """Enqueue one request span on a feed; returns the span."""
        feed = self._feeds[feed_name]
        if arrival_cycles is None:
            arrival_cycles = self.clock.cycles if self.clock else 0.0
        self._next_id += 1
        span = RequestSpan(self._next_id,
                           name if name is not None else
                           "%s#%d" % (feed_name, self._next_id),
                           feed_name, arrival_cycles)
        feed.pending.append(span)
        feed.inflight.append(span)
        return span

    # -- tracer hooks ------------------------------------------------------------
    def _unpin(self):
        """Close the linger window: detach the lingering span, if any."""
        span = self._lingering
        if span is None:
            return
        thread = self._linger_thread
        if thread is not None and thread.span is span:
            thread.span = None
        span._linger = False
        self._lingering = None
        self._linger_thread = None

    def on_entry_begin(self, library, ctx):
        """Entry-point call observed; claim a span when it is a feed
        thread's first entry into the trigger library.  Returns a token
        for :meth:`on_entry_end` (None when nothing was claimed)."""
        thread = ctx.current_thread
        if thread is None:
            return None
        feed = self._threads.get(thread.name)
        if feed is None or feed.library != library:
            return None
        span = getattr(thread, "span", None)
        if span is not None:
            if not span._linger:
                return None         # nested entry while actively serving
            # A fresh entry into the trigger library means new work: the
            # previous request's reply window is over.
            self._unpin()
        if not feed.pending:
            return None
        span = feed.pending.popleft()
        now = ctx.clock.cycles
        if now < span.arrival_cycles:
            # The serving core's local clock is behind the injection
            # point (SMP overlap); service cannot causally precede
            # arrival.
            now = span.arrival_cycles
            span.clamped = True
            self.causality_clamps += 1
        core = self._current_core
        previous_core = self._thread_cores.get(thread.name)
        migrated = (core is not None and previous_core is not None
                    and core != previous_core)
        if migrated:
            self.migrations += 1
        self._thread_cores[thread.name] = core
        wakeups = self._wakes.pop(thread.name, 0)
        span._serve_begin(now, thread, core, migrated, wakeups)
        thread.span = span
        self.claims += 1
        return (span, thread)

    def on_entry_end(self, token, ctx):
        """The claimed entry-point call returned.  The span is not
        released yet: it *lingers* on the thread for the rest of the
        slice, so the reply's transport crossings (the ``send`` right
        after the app call, in the same run-to-yield slice) still book
        to the request that produced the reply."""
        span, thread = token
        now = ctx.clock.cycles
        if now < span.serve_begin_cycles:
            # Only reachable when the claim itself was clamped forward
            # (thread-local time is otherwise monotonic).
            now = span.serve_begin_cycles
            span.clamped = True
            self.causality_clamps += 1
        span._serve_end(now)
        span._linger = True
        self._lingering = span
        self._linger_thread = thread

    def on_gate(self, ctx, label, kind, begin, duration, overhead, depth,
                status):
        """A gate crossing finished; book its overhead to the serving
        thread's in-service (or lingering) span, if any."""
        thread = ctx.current_thread
        if thread is None:
            return
        span = getattr(thread, "span", None)
        if span is None or span.completed:
            return
        span.add_gate(label, kind, begin, duration, overhead, depth,
                      status)
        if span._linger:
            # The linger window lives inside one run-to-yield slice,
            # where the clock only advances; extend the service window
            # over the reply's transport work.
            span.serve_end_cycles = max(span.serve_end_cycles,
                                        ctx.clock.cycles)

    def on_thread_dispatch(self, current=None):
        """The scheduler dispatched a slice (any thread): the previous
        slice is over, so the lingering span — if any — detaches."""
        self._unpin()

    def on_thread_wake(self, thread):
        name = thread.name
        if name in self._threads:
            self._wakes[name] = self._wakes.get(name, 0) + 1

    def on_core_dispatch(self, core, thread=None):
        self._current_core = core

    # -- completion --------------------------------------------------------------
    def complete_next(self, feed_name, now=None, status="ok"):
        """Complete the oldest in-flight span of a feed (FIFO transport
        order); returns it."""
        feed = self._feeds[feed_name]
        if not feed.inflight:
            raise ReproError("feed %r has no span in flight" % feed_name)
        return self.complete(feed.inflight.popleft(), now=now,
                             status=status)

    def complete(self, span, now=None, status="ok"):
        """Mark a span complete at ``now`` and hand it to the sink."""
        if now is None:
            now = self.clock.cycles if self.clock else 0.0
        floor = span.serve_end_cycles if span.claimed \
            else span.arrival_cycles
        if now < floor:
            # The observing thread's core-local clock is behind the
            # server's send point (SMP overlap); the reply cannot
            # causally complete before service ended (or, unclaimed,
            # before the request even arrived).
            now = floor
            span.clamped = True
            self.causality_clamps += 1
        if span is self._lingering:
            # Completed from its own serving slice (the sqlite worker
            # observes its own reply): close the linger window.
            self._unpin()
        span.complete_cycles = now
        span.status = status
        if not span.claimed:
            self.unclaimed_completions += 1
        self.spans.append(span)
        if self.on_complete is not None:
            self.on_complete(span)
        return span

    # -- aggregate view ----------------------------------------------------------
    def check_all(self):
        """Run :meth:`RequestSpan.check` on every completed span."""
        for span in self.spans:
            span.check()
        return len(self.spans)

    def summary(self):
        """Aggregate decomposition across completed spans."""
        totals = {"queue_cycles": 0.0, "gate_cycles": 0.0,
                  "app_cycles": 0.0, "latency_cycles": 0.0}
        crossings = 0
        wakeups = 0
        for span in self.spans:
            for key, value in span.decomposition().items():
                totals[key] += value
            crossings += span.gate_crossings
            wakeups += span.wakeups
        return {
            "completed": len(self.spans),
            "claimed": self.claims,
            "unclaimed_completions": self.unclaimed_completions,
            "migrations": self.migrations,
            "causality_clamps": self.causality_clamps,
            "gate_crossings": crossings,
            "wakeups": wakeups,
            "totals": totals,
        }

    def __repr__(self):
        return "SpanTracker(%d feeds, %d completed)" % (
            len(self._feeds), len(self.spans),
        )
