"""SLO targets, windowed burn rates, and the slow-request sampler.

An :class:`SloTarget` is the classic latency SLO: "``objective`` of
requests complete within ``threshold_cycles``".  The
:class:`SloEvaluator` scores completed request spans against a target
per telemetry window (same windowing as
:mod:`repro.obs.timeseries`), producing the **burn rate** the SRE
workbook defines: the fraction of the error budget consumed per unit of
traffic.  Burn 1.0 means the budget is being spent exactly as fast as
it accrues; sustained burn above 1.0 means the SLO will be violated.

The :class:`SlowSampler` keeps the *evidence*: the K slowest
above-threshold spans — full span trees, so a p99 exemplar shows which
gates, queueing, and app work made that particular request slow.
Retention is deterministic: ordered by (latency desc, span id asc), so
reruns keep byte-identical samples.

Everything is driven from span completions (the
:class:`~repro.obs.hub.TelemetryHub` wires
:attr:`~repro.obs.spans.SpanTracker.on_complete` to both classes) and
reads only the virtual clock values already stamped on the span.
"""

from __future__ import annotations

import bisect

from repro.errors import ReproError
from repro.obs.timeseries import DEFAULT_WINDOW_CYCLES


class SloTarget:
    """``objective`` of requests within ``threshold_cycles``."""

    __slots__ = ("name", "threshold_cycles", "objective")

    def __init__(self, name, threshold_cycles, objective=0.99):
        if not 0.0 < objective < 1.0:
            raise ReproError(
                "SLO objective must be in (0, 1): %r" % objective)
        if threshold_cycles <= 0:
            raise ReproError(
                "SLO threshold must be positive: %r" % threshold_cycles)
        self.name = name
        self.threshold_cycles = float(threshold_cycles)
        self.objective = objective

    @property
    def error_budget(self):
        """Tolerated fraction of bad requests (1 - objective)."""
        return 1.0 - self.objective

    def to_dict(self):
        return {"name": self.name,
                "threshold_cycles": self.threshold_cycles,
                "objective": self.objective}

    def __repr__(self):
        return "SloTarget(%s <= %.0f cycles for %.3f)" % (
            self.name, self.threshold_cycles, self.objective,
        )


class SloEvaluator:
    """Windowed burn-rate evaluation of one target."""

    def __init__(self, target, window_cycles=DEFAULT_WINDOW_CYCLES):
        self.target = target
        self.window_cycles = float(window_cycles)
        #: window index -> [good, bad].
        self._windows = {}
        self.good = 0
        self.bad = 0

    def record(self, span):
        """Score one completed span (windowed by its completion time)."""
        index = int(span.complete_cycles // self.window_cycles)
        counts = self._windows.setdefault(index, [0, 0])
        if span.latency_cycles <= self.target.threshold_cycles:
            counts[0] += 1
            self.good += 1
        else:
            counts[1] += 1
            self.bad += 1

    @staticmethod
    def _burn(good, bad, budget):
        total = good + bad
        if total == 0:
            return 0.0
        return (bad / total) / budget

    def burn_rate(self, index):
        """Budget-burn rate of one window (0.0 when it saw no traffic)."""
        good, bad = self._windows.get(index, (0, 0))
        return self._burn(good, bad, self.target.error_budget)

    def burn_over(self, start_cycles, end_cycles):
        """Budget-burn rate over the cycle range ``[start, end)``.

        Each SLO window's counts are weighted by the fraction of the
        window the range covers, so callers windowing on a different
        width (the telemetry hub's, say) get a well-defined burn even
        when the two widths are not multiples of each other.  When the
        range is exactly one SLO window this equals :meth:`burn_rate`.
        """
        if end_cycles <= start_cycles:
            return 0.0
        first = int(start_cycles // self.window_cycles)
        last = int(end_cycles // self.window_cycles)
        good = bad = 0.0
        for index in range(first, last + 1):
            counts = self._windows.get(index)
            if counts is None:
                continue
            lo = max(start_cycles, index * self.window_cycles)
            hi = min(end_cycles, (index + 1) * self.window_cycles)
            if hi <= lo:
                continue
            weight = (hi - lo) / self.window_cycles
            good += counts[0] * weight
            bad += counts[1] * weight
        return self._burn(good, bad, self.target.error_budget)

    @property
    def overall_burn(self):
        return self._burn(self.good, self.bad, self.target.error_budget)

    @property
    def met(self):
        """Whether the run as a whole met the objective."""
        return self.overall_burn <= 1.0

    def worst_window(self):
        """``(index, burn)`` of the worst *burning* window (None when no
        window burned any budget).

        Ties break to the earliest window, deterministically.
        """
        worst = None
        for index in sorted(self._windows):
            burn = self.burn_rate(index)
            if burn > 0.0 and (worst is None or burn > worst[1]):
                worst = (index, burn)
        return worst

    def snapshot(self):
        windows = [
            {"index": index,
             "good": counts[0],
             "bad": counts[1],
             "burn": self._burn(counts[0], counts[1],
                                self.target.error_budget)}
            for index, counts in sorted(self._windows.items())
        ]
        return {
            "target": self.target.to_dict(),
            "window_cycles": self.window_cycles,
            "good": self.good,
            "bad": self.bad,
            "overall_burn": self.overall_burn,
            "met": self.met,
            "windows": windows,
        }

    def __repr__(self):
        return "SloEvaluator(%s burn=%.2f)" % (
            self.target.name, self.overall_burn,
        )


class SlowSampler:
    """Keeps the K slowest above-threshold spans, deterministically."""

    def __init__(self, threshold_cycles, capacity=16):
        if capacity < 1:
            raise ReproError("sampler capacity must be >= 1")
        self.threshold_cycles = float(threshold_cycles)
        self.capacity = capacity
        #: Ascending (-latency, span_id) keys alongside the spans, so the
        #: slowest request sits first and ties break to the oldest span.
        self._keys = []
        self._spans = []
        self.offered = 0
        self.admitted = 0

    def offer(self, span):
        """Consider one completed span; keep it if slow enough."""
        self.offered += 1
        if span.latency_cycles < self.threshold_cycles:
            return False
        key = (-span.latency_cycles, span.span_id)
        if len(self._spans) >= self.capacity and key >= self._keys[-1]:
            return False
        at = bisect.bisect_left(self._keys, key)
        self._keys.insert(at, key)
        self._spans.insert(at, span)
        if len(self._spans) > self.capacity:
            self._keys.pop()
            self._spans.pop()
        self.admitted += 1
        return True

    @property
    def samples(self):
        """Retained spans, slowest first."""
        return list(self._spans)

    def snapshot(self):
        return {
            "threshold_cycles": self.threshold_cycles,
            "capacity": self.capacity,
            "offered": self.offered,
            "admitted": self.admitted,
            "samples": [span.to_dict() for span in self._spans],
        }

    def __repr__(self):
        return "SlowSampler(%d/%d kept of %d offered)" % (
            len(self._spans), self.capacity, self.offered,
        )
