"""``repro.obs``: structured observability on the virtual clock.

FlexOS's value proposition is making isolation costs *visible* so the
poset explorer can trade safety against performance; this package is the
instrumentation that grounds the claim.  A :class:`Tracer` records
spans/events for every gate crossing, PKRU write, fault, supervision
decision, allocator operation, context switch, and TCP segment; a
:class:`MetricsRegistry` aggregates counters and latency histograms; and
the exporters emit Chrome trace-event JSON, folded-stack flamegraphs,
and JSON metric snapshots.

Hook sites across the tree consult the module-level no-op singleton
(:data:`repro.obs.tracer.ACTIVE`): with tracing disabled the whole layer
costs a single attribute check per hook, and in *virtual* time it is
free either way — the tracer never charges the clock.

Quickstart::

    from repro.obs import Tracer, tracing, chrome_trace_json

    with tracing(Tracer(clock=instance.clock)) as tracer:
        ... run the workload ...
    open("trace.json", "w").write(chrome_trace_json(tracer))
    snapshot = tracer.metrics.snapshot()

Or from the CLI: ``flexos-repro trace redis`` / ``flexos-repro metrics
redis``.  See ``docs/observability.md``.
"""

from repro.obs.analysis import (
    TraceAnalysis,
    analyze,
    critical_path,
    crossing_matrix,
    library_attribution,
    request_chains,
)
from repro.obs.export import (
    chrome_trace,
    chrome_trace_json,
    flamegraph,
    metrics_json,
)
from repro.obs.hub import HUB_SCHEMA_VERSION, TelemetryHub
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.regress import (
    SNAPSHOT_SCHEMA_VERSION,
    check_baselines,
    check_snapshot,
    config_digest,
    diff_snapshots,
    flatten_metrics,
    load_snapshot,
)
from repro.obs.slo import SloEvaluator, SloTarget, SlowSampler
from repro.obs.spans import RequestSpan, SpanTracker
from repro.obs.timeseries import WindowedTelemetry
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
    get_tracer,
    install_tracer,
    tracing,
    uninstall_tracer,
)

__all__ = [
    "HUB_SCHEMA_VERSION",
    "NULL_TRACER",
    "SNAPSHOT_SCHEMA_VERSION",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "RequestSpan",
    "SloEvaluator",
    "SloTarget",
    "SlowSampler",
    "SpanTracker",
    "TelemetryHub",
    "TraceAnalysis",
    "TraceEvent",
    "Tracer",
    "WindowedTelemetry",
    "analyze",
    "check_baselines",
    "check_snapshot",
    "chrome_trace",
    "chrome_trace_json",
    "config_digest",
    "critical_path",
    "crossing_matrix",
    "diff_snapshots",
    "flamegraph",
    "flatten_metrics",
    "get_tracer",
    "install_tracer",
    "library_attribution",
    "load_snapshot",
    "metrics_json",
    "request_chains",
    "tracing",
    "uninstall_tracer",
]
