"""Structured tracing on the virtual clock.

The tracer is the event firehose of the observability layer
(:mod:`repro.obs`): every gate crossing, PKRU write, protection or
injected fault, supervisor decision, allocator operation, scheduler
context switch, and TCP segment can emit a :class:`TraceEvent` stamped
with the virtual-cycle clock.  Aggregation lives in
:class:`~repro.obs.metrics.MetricsRegistry` (the tracer feeds it as
events arrive); rendering lives in :mod:`repro.obs.export`.

Two invariants keep observation from perturbing the system:

* **The tracer never touches the clock.**  Events read
  ``clock.cycles``; they never ``charge()``.  Enabling tracing changes
  no virtual-time measurement, which ``tests/test_obs.py`` asserts down
  to the cycle.
* **Disabled means one attribute check.**  Hook sites consult the
  module-level :data:`ACTIVE` singleton and test ``.enabled`` once; with
  the default :class:`NullTracer` installed that is the entire cost of
  instrumentation.

Install a tracer with :func:`install_tracer` / :func:`uninstall_tracer`,
or scoped with the :func:`tracing` context manager (which nests: the
previous tracer is restored on exit).
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs.metrics import MetricsRegistry

#: Event categories the exporters and tests key on.
CATEGORIES = (
    "gate",         # one cross-compartment crossing (a span)
    "pkru",         # one PKRU register write
    "fault",        # a protection or injected fault fired
    "supervisor",   # one supervision decision
    "alloc",        # one allocator operation
    "sched",        # one scheduler context switch
    "net",          # one TCP segment sent or received
    "ept",          # one address-space switch or shared-window RPC alloc
    "irq",          # one interrupt delivery
    "fs",           # one VFS/ramfs operation
    "explore",      # one exploration-engine wave scheduled
    "tlb",          # one permission-TLB hit, miss, or flush
    "reconfig",     # one live-reconfiguration phase or step
    "compile",      # one datapath-compiler action (record/hit/deopt/...)
)


class TraceEvent:
    """One recorded event.

    ``dur`` is ``None`` for instant events; spans (gate crossings) carry
    their duration in virtual cycles.  ``args`` is a flat dict of
    event-specific attributes, JSON-serialisable by construction.
    """

    __slots__ = ("name", "cat", "ts", "dur", "args", "core")

    def __init__(self, name, cat, ts, dur=None, args=None, core=None):
        self.name = name
        self.cat = cat
        self.ts = ts
        self.dur = dur
        self.args = args or {}
        #: Virtual core the event was recorded on (None outside SMP
        #: slices); the Chrome exporter renders one lane per core.
        self.core = core

    @property
    def is_span(self):
        return self.dur is not None

    def __repr__(self):
        span = " dur=%.0f" % self.dur if self.dur is not None else ""
        return "TraceEvent(%s/%s ts=%.0f%s)" % (
            self.cat, self.name, self.ts, span,
        )


class NullTracer:
    """The disabled tracer: every hook is a no-op.

    Hook sites check :attr:`enabled` once and skip the call entirely, so
    the only cost of the instrumentation with tracing off is that single
    attribute test — and, by the never-touch-the-clock invariant, zero
    virtual cycles either way.
    """

    enabled = False
    events = ()
    metrics = None

    def gate_begin(self, gate, ctx, library):
        return None

    def gate_end(self, token, ctx, status="ok", overhead=0.0):
        pass

    def entry_begin(self, library, ctx):
        return None

    def entry_end(self, token, ctx):
        pass

    def thread_wake(self, thread):
        pass

    def pkru_write(self, op, key):
        pass

    def fault(self, fault_type, **args):
        pass

    def supervision(self, compartment, action, fault_type, attempt, **args):
        pass

    def alloc_op(self, op, region, size, fast=None):
        pass

    def context_switch(self, previous, current):
        pass

    def tcp_segment(self, direction, flags, nbytes, port=None):
        pass

    def space_switch(self, previous, current, direction):
        pass

    def window_alloc(self, space, nbytes, offset, wrapped):
        pass

    def irq(self, line, handlers):
        pass

    def fs_op(self, layer, op):
        pass

    def explore_wave(self, index, scheduled, evaluated, cache_hits, pruned):
        pass

    def tlb_op(self, op):
        pass

    def compile_op(self, op, n=1):
        pass

    def core_dispatch(self, core, depth, thread=None):
        pass

    def reconfig(self, action, **args):
        pass

    def reconfig_blackout(self, cycles, queued):
        pass

    def instant(self, name, cat, **args):
        pass

    def __repr__(self):
        return "NullTracer()"


#: The process-wide disabled singleton hook sites see by default.
NULL_TRACER = NullTracer()


class Tracer:
    """Records structured events; feeds the metrics registry as it goes.

    Args:
        clock: the :class:`~repro.hw.clock.Clock` events are stamped
            with.  ``None`` stamps instant events at 0 (gate spans always
            use the execution context's clock).
        metrics: a :class:`~repro.obs.metrics.MetricsRegistry` to
            aggregate into; a fresh one is created when omitted.
        keep_events: set False to aggregate metrics only (long campaigns
            that do not need the event stream).
    """

    enabled = True

    def __init__(self, clock=None, metrics=None, keep_events=True):
        self.clock = clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.keep_events = keep_events
        self.events = []
        #: Open gate spans: [label, child_cycles_accumulator] entries.
        self._stack = []
        #: :class:`~repro.obs.spans.SpanTracker` driven by the entry,
        #: gate, wake, and core hooks (None = span tracing off).
        self.spans = None
        #: Virtual core of the slice currently executing (stamped by the
        #: SMP scheduler via :meth:`core_dispatch`; None when serial).
        self.current_core = None

    # -- internals -----------------------------------------------------------
    def _now(self):
        return self.clock.cycles if self.clock is not None else 0.0

    def _record(self, event):
        if self.keep_events:
            event.core = self.current_core
            self.events.append(event)

    def instant(self, name, cat, **args):
        """Record a free-form instant event (rarely needed directly)."""
        self._record(TraceEvent(name, cat, self._now(), args=args))

    # -- gate crossings (spans) ------------------------------------------------
    def gate_begin(self, gate, ctx, library):
        """Open a crossing span; returns a token for :meth:`gate_end`.

        Called by :meth:`repro.core.gates.Gate._call_once` before the
        domain switch; ``ctx.current_library`` still names the caller.
        """
        label = "%s->%s:%s" % (gate.src.name, gate.dst.name, library)
        frame = [label, 0.0]
        self._stack.append(frame)
        return (gate, library, ctx.current_library, ctx.clock.cycles,
                ctx.gate_depth, frame,
                tuple(entry[0] for entry in self._stack))

    def gate_end(self, token, ctx, status="ok", overhead=0.0):
        """Close a crossing span opened by :meth:`gate_begin`.

        ``overhead`` is the crossing's *pure* isolation cost — the cycles
        the gate charged entering and leaving the domain, measured by
        :meth:`~repro.core.gates.Gate._call_once` — as opposed to
        ``dur``, which includes the callee's work.  Request spans book
        exactly this overhead as gate cycles.
        """
        gate, library, src_library, begin, depth, frame, stack = token
        end = ctx.clock.cycles
        duration = end - begin
        if self._stack and self._stack[-1] is frame:
            self._stack.pop()
        if self._stack:
            self._stack[-1][1] += duration
        self_cycles = max(0.0, duration - frame[1])
        self._record(TraceEvent(
            frame[0], "gate", begin, dur=duration,
            args={
                "kind": gate.kind,
                "src": gate.src.name,
                "dst": gate.dst.name,
                "src_comp": gate.src.index,
                "dst_comp": gate.dst.index,
                "library": library,
                "src_library": src_library,
                "depth": depth,
                "one_way_cost": gate.one_way_cost(),
                "status": status,
                "self_cycles": self_cycles,
                "overhead_cycles": overhead,
                "stack": stack,
            },
        ))
        self.metrics.record_gate(
            gate.src.name, gate.dst.name, gate.src.index, gate.dst.index,
            gate.kind, library, duration,
        )
        if self.spans is not None:
            self.spans.on_gate(ctx, frame[0], gate.kind, begin, duration,
                               overhead, depth, status)

    # -- entry-point calls (span claiming) ---------------------------------------
    def entry_begin(self, library, ctx):
        """An entry-point call is starting (gated *or* same-compartment
        direct); drives span claiming.  Returns a token for
        :meth:`entry_end`, or None when no span tracking applies.  Never
        records an event — the gated path already has its gate span, and
        direct calls are the zero-overhead baseline."""
        if self.spans is None:
            return None
        return self.spans.on_entry_begin(library, ctx)

    def entry_end(self, token, ctx):
        """Close an entry-point call opened by :meth:`entry_begin`."""
        if token is not None:
            self.spans.on_entry_end(token, ctx)

    def thread_wake(self, thread):
        """A thread became runnable (wake/wake_all/sleep expiry).

        Counter-only, span-tracker-only: the scheduler fires this on
        every wake-up, and request spans use it to count how many
        reschedules the serving thread took between two requests.
        """
        if self.spans is not None:
            self.spans.on_thread_wake(thread)

    # -- instant hooks ----------------------------------------------------------
    def pkru_write(self, op, key):
        """One write to the PKRU register (``allow``/``deny``/``restore``)."""
        self._record(TraceEvent(
            "pkru-%s" % op, "pkru", self._now(),
            args={"op": op, "key": key},
        ))
        self.metrics.record_pkru_write(op)

    def fault(self, fault_type, **args):
        """A protection or injected fault fired."""
        self._record(TraceEvent(fault_type, "fault", self._now(), args=args))
        self.metrics.record_fault(fault_type)

    def supervision(self, compartment, action, fault_type, attempt, **args):
        """The supervisor decided what one compartment fault becomes."""
        args.update({"compartment": compartment, "fault": fault_type,
                     "attempt": attempt})
        self._record(TraceEvent(
            "supervise-%s" % action, "supervisor", self._now(), args=args,
        ))
        self.metrics.record_supervision(action)

    def alloc_op(self, op, region, size, fast=None):
        """One allocator operation (``alloc``/``free``), fast or slow path."""
        self._record(TraceEvent(
            "%s-%s" % (op, "fast" if fast else "slow")
            if op == "alloc" else op,
            "alloc", self._now(),
            args={"op": op, "region": region, "bytes": size, "fast": fast},
        ))
        self.metrics.record_alloc(op, region, size, fast)

    def context_switch(self, previous, current):
        """The scheduler dispatched a different thread.

        Also tells the span tracker the previous slice is over, which
        closes a request span's post-entry linger window (see
        :meth:`repro.obs.spans.SpanTracker.on_thread_dispatch`).
        """
        self._record(TraceEvent(
            "switch", "sched", self._now(),
            args={"from": previous, "to": current},
        ))
        self.metrics.record_context_switch()
        if self.spans is not None:
            self.spans.on_thread_dispatch(current)

    def tcp_segment(self, direction, flags, nbytes, port=None):
        """One TCP segment left (``tx``) or reached (``rx``) the stack."""
        self._record(TraceEvent(
            "tcp-%s" % direction, "net", self._now(),
            args={"direction": direction, "flags": flags, "bytes": nbytes,
                  "port": port},
        ))
        self.metrics.record_tcp_segment(direction)

    def space_switch(self, previous, current, direction):
        """The execution context moved to another VM's address space."""
        self._record(TraceEvent(
            "as-switch", "ept", self._now(),
            args={"from": previous, "to": current, "direction": direction},
        ))
        self.metrics.record_space_switch()

    def window_alloc(self, space, nbytes, offset, wrapped):
        """One descriptor allocation in the inter-VM shared window."""
        self._record(TraceEvent(
            "ivshmem-alloc", "ept", self._now(),
            args={"space": space, "bytes": nbytes, "offset": offset,
                  "wrapped": wrapped},
        ))
        self.metrics.record_window_alloc(nbytes, wrapped)

    def irq(self, line, handlers):
        """One interrupt delivered through the first-level handler."""
        self._record(TraceEvent(
            "irq-%d" % line, "irq", self._now(),
            args={"line": line, "handlers": handlers},
        ))
        self.metrics.record_irq(line)

    def fs_op(self, layer, op):
        """One filesystem operation (``vfscore`` or ``ramfs`` layer)."""
        self._record(TraceEvent(
            "%s-%s" % (layer, op), "fs", self._now(),
            args={"layer": layer, "op": op},
        ))
        self.metrics.record_fs_op(layer, op)

    def explore_wave(self, index, scheduled, evaluated, cache_hits, pruned):
        """The exploration engine finished one antichain wave."""
        self._record(TraceEvent(
            "wave-%d" % index, "explore", self._now(),
            args={"wave": index, "scheduled": scheduled,
                  "evaluated": evaluated, "cache_hits": cache_hits,
                  "pruned": pruned},
        ))
        self.metrics.record_explore_wave(scheduled, evaluated, cache_hits,
                                         pruned)

    def tlb_op(self, op):
        """One permission-TLB event (``hit``/``miss``/``flush``).

        Counter-only by default: hits happen on every hot-path access, so
        recording an event object per hit would swamp the stream and the
        exporters.  The aggregate lands in the metrics snapshot's ``tlb``
        section (which appears only when the TLB actually ran).
        """
        self.metrics.record_tlb(op)

    def compile_op(self, op, n=1):
        """One datapath-compiler action (record, plan hit, deopt, ...).

        Counter-only, like :meth:`tlb_op`: the engine fires these on
        every specialized dispatch, so aggregates land in the metrics
        snapshot's ``compile`` section (present only when the compiler
        actually ran) instead of the event stream.
        """
        self.metrics.record_compile(op, n)

    def core_dispatch(self, core, depth, thread=None):
        """One SMP dispatch on ``core`` with ``depth`` threads left queued.

        Counter-only, like :meth:`tlb_op`: the SMP scheduler fires this
        on every slice, so recording an event object each time would
        swamp the stream under load.  The aggregate lands in the metrics
        snapshot's ``sched`` section and ``runqueue_depth`` histogram
        (which appear only when the SMP scheduler actually ran).  As a
        side effect the slice's core is remembered, so every event
        recorded until the next dispatch is stamped with it (the Chrome
        exporter's per-core lanes) and request spans know which core
        served them.
        """
        self.current_core = core
        self.metrics.record_core_dispatch(core, depth)
        if self.spans is not None:
            self.spans.on_core_dispatch(core, thread)

    def reconfig(self, action, **args):
        """One live-reconfiguration action (plan, phase entry, step,
        commit, rollback, resume, harden)."""
        self._record(TraceEvent(
            "reconfig-%s" % action, "reconfig", self._now(), args=args,
        ))
        self.metrics.record_reconfig(action)

    def reconfig_blackout(self, cycles, queued):
        """The blackout window of one migration: virtual cycles between
        QUIESCE entry and RESUME, with ``queued`` requests waiting."""
        self._record(TraceEvent(
            "reconfig-blackout", "reconfig", self._now(),
            args={"cycles": cycles, "queued": queued},
        ))
        self.metrics.record_reconfig_blackout(cycles, queued)

    # -- introspection ----------------------------------------------------------
    def events_in(self, cat):
        """All recorded events of one category."""
        return [e for e in self.events if e.cat == cat]

    def gate_pairs(self):
        """Set of (src_comp, dst_comp) pairs with at least one span."""
        return {
            (e.args["src_comp"], e.args["dst_comp"])
            for e in self.events if e.cat == "gate"
        }

    def __repr__(self):
        return "Tracer(%d events)" % len(self.events)


#: The tracer hook sites consult.  Swapped by :func:`install_tracer`;
#: the default is the no-op singleton, so instrumentation costs one
#: ``.enabled`` check until somebody opts in.
ACTIVE = NULL_TRACER


def install_tracer(tracer):
    """Make ``tracer`` the active tracer; returns the previous one."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = tracer
    return previous


def uninstall_tracer():
    """Reset to the disabled singleton; returns the previous tracer."""
    return install_tracer(NULL_TRACER)


def get_tracer():
    """The currently active tracer (the null singleton when disabled)."""
    return ACTIVE


@contextmanager
def tracing(tracer=None, clock=None):
    """Scoped tracing: install for a block, restore the previous tracer.

    Yields the installed :class:`Tracer` (a fresh one bound to ``clock``
    when none is passed).  Nests: an inner ``tracing()`` block diverts
    events to its own tracer and hands the outer one back on exit.
    """
    tracer = tracer if tracer is not None else Tracer(clock=clock)
    previous = install_tracer(tracer)
    try:
        yield tracer
    finally:
        install_tracer(previous)
