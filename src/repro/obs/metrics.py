"""Metric aggregation for the observability layer.

The :class:`MetricsRegistry` turns the tracer's event stream into
constant-space aggregates: counters per gate pair / library / fault type
/ supervision action / allocator path, plus fixed-bucket latency
histograms per gate pair.  The invariant the tests pin down: for every
gate pair, the latency histogram's total count equals the sum of that
pair's crossing counters — histograms and counters observe the same
stream, so they can never drift apart.

Nothing here touches the virtual clock; aggregation is free in modelled
time (see the module docstring of :mod:`repro.obs.tracer`).
"""

from __future__ import annotations

#: Bucket upper bounds (virtual cycles) for gate-crossing latency.
#: Spans the range from a plain function call (~5 cycles) to an EPT RPC
#: with marshalling and supervision (tens of thousands).
GATE_LATENCY_BUCKETS = (
    50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
    25000.0, 50000.0, 100000.0,
)

#: Bucket upper bounds (bytes) for allocation sizes.
ALLOC_SIZE_BUCKETS = (16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
                      4096.0, 16384.0, 65536.0)

#: Bucket upper bounds (virtual cycles) for reconfiguration blackout
#: windows (QUIESCE entry -> RESUME).  Spans a cheap same-mechanism gate
#: swap (a few thousand cycles) to a full MPK->EPT migration that boots
#: per-compartment VMs (hundreds of thousands).
RECONFIG_BLACKOUT_BUCKETS = (
    1_000.0, 5_000.0, 10_000.0, 25_000.0, 50_000.0, 100_000.0,
    250_000.0, 500_000.0, 1_000_000.0,
)

#: Bucket upper bounds (threads) for the run-queue depth observed at
#: each SMP dispatch.  Depth 0 means the dispatched thread was the only
#: runnable one; deep queues are the queueing-delay signal the open-loop
#: load harness is after.
RUNQUEUE_DEPTH_BUCKETS = (
    0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
)


class Histogram:
    """A fixed-bucket histogram with an overflow bucket.

    ``counts[i]`` counts observations ``<= buckets[i]`` (and greater
    than the previous bound); ``counts[-1]`` is the overflow bucket.

    Boundary rule: bucket bounds are **inclusive upper bounds**.  A
    value exactly equal to ``buckets[i]`` lands in ``counts[i]``, never
    in ``counts[i + 1]`` — e.g. with bounds ``(50, 100)``, observing
    exactly ``50.0`` increments the first bucket, and exactly
    ``buckets[-1]`` increments the last bounded bucket, not overflow.
    This matters because the tree's cost model produces exact round
    values (a gate's one-way cost, a power-of-two allocation size), so
    edge hits are the common case, not a float accident;
    ``tests/test_obs.py::TestHistogramBucketEdges`` pins the rule.
    """

    __slots__ = ("buckets", "counts", "total", "sum")

    def __init__(self, buckets):
        self.buckets = tuple(float(b) for b in buckets)
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError("histogram buckets must be ascending")
        self.counts = [0] * (len(self.buckets) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value):
        self.total += 1
        self.sum += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self):
        return self.sum / self.total if self.total else 0.0

    def to_dict(self):
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
            "mean": self.mean,
        }

    def __repr__(self):
        return "Histogram(total=%d mean=%.1f)" % (self.total, self.mean)


class MetricsRegistry:
    """Counters and histograms aggregated from the trace stream.

    Args:
        timeseries: optional
            :class:`~repro.obs.timeseries.WindowedTelemetry` every
            recording hook tees into, so the same stream that feeds the
            whole-run aggregates also feeds the windowed flight
            recorder.  The aggregate :meth:`snapshot` shape is
            unaffected (the perf-gate baselines stay byte-identical);
            windowed state is read through the telemetry object itself.
    """

    def __init__(self, timeseries=None):
        self.timeseries = timeseries
        #: (src_name, dst_name, gate_kind) -> crossings.
        self.gate_crossings = {}
        #: (src_name, dst_name) -> latency Histogram (virtual cycles).
        self.gate_latency = {}
        #: (src_comp_index, dst_comp_index) -> crossings.
        self.gate_pairs = {}
        #: callee micro-library -> gated calls into it.
        self.crossings_by_library = {}
        self.pkru_writes = 0
        #: fault type name -> occurrences.
        self.faults = {}
        #: supervision action -> decisions.
        self.supervision = {}
        self.alloc_fast = 0
        self.alloc_slow = 0
        self.frees = 0
        #: heap region name -> operations.
        self.alloc_by_region = {}
        self.alloc_sizes = Histogram(ALLOC_SIZE_BUCKETS)
        self.context_switches = 0
        #: "tx"/"rx" -> segments.
        self.tcp_segments = {"tx": 0, "rx": 0}
        #: EPT backend: cross-VM address-space switches.
        self.space_switches = 0
        #: EPT backend: shared-window descriptor allocations.
        self.window_allocs = 0
        self.window_bytes = 0.0
        self.window_wraps = 0
        #: interrupt line -> deliveries.
        self.irqs = {}
        #: "layer.op" (e.g. "vfscore.open") -> operations.
        self.fs_ops = {}
        #: Exploration engine: wavefront and cache accounting.
        self.explore_waves = 0
        self.explore_scheduled = 0
        self.explore_evaluated = 0
        self.explore_cache_hits = 0
        self.explore_pruned = 0
        #: Permission-TLB events ("hit"/"miss"/"flush").
        self.tlb = {"hit": 0, "miss": 0, "flush": 0}
        #: Live reconfiguration: action -> occurrences.
        self.reconfig = {}
        self.reconfig_blackout = Histogram(RECONFIG_BLACKOUT_BUCKETS)
        #: Requests observed queued during blackout windows (summed).
        self.reconfig_queued = 0
        #: SMP scheduler: core index -> dispatches on that core.
        self.core_dispatches = {}
        self.runqueue_depth = Histogram(RUNQUEUE_DEPTH_BUCKETS)
        #: Datapath compiler: action -> occurrences.
        self.compile = {}

    # -- recording hooks (called by the Tracer) --------------------------------
    def record_gate(self, src, dst, src_comp, dst_comp, kind, library,
                    duration):
        key = (src, dst, kind)
        self.gate_crossings[key] = self.gate_crossings.get(key, 0) + 1
        pair = (src_comp, dst_comp)
        self.gate_pairs[pair] = self.gate_pairs.get(pair, 0) + 1
        self.crossings_by_library[library] = (
            self.crossings_by_library.get(library, 0) + 1
        )
        histogram = self.gate_latency.get((src, dst))
        if histogram is None:
            histogram = self.gate_latency[(src, dst)] = Histogram(
                GATE_LATENCY_BUCKETS,
            )
        histogram.observe(duration)
        if self.timeseries is not None:
            self.timeseries.bump("gate.crossings")
            self.timeseries.bump("gate.cycles", duration)

    def record_pkru_write(self, op):
        self.pkru_writes += 1
        if self.timeseries is not None:
            self.timeseries.bump("pkru.writes")

    def record_fault(self, fault_type):
        self.faults[fault_type] = self.faults.get(fault_type, 0) + 1
        if self.timeseries is not None:
            self.timeseries.bump("faults")

    def record_supervision(self, action):
        self.supervision[action] = self.supervision.get(action, 0) + 1
        if self.timeseries is not None:
            self.timeseries.bump("supervision.%s" % action)

    def record_alloc(self, op, region, size, fast):
        if op == "alloc":
            if fast:
                self.alloc_fast += 1
            else:
                self.alloc_slow += 1
            self.alloc_sizes.observe(size)
        else:
            self.frees += 1
        self.alloc_by_region[region] = self.alloc_by_region.get(region, 0) + 1
        if self.timeseries is not None:
            self.timeseries.bump("alloc.%s" % op)

    def record_context_switch(self):
        self.context_switches += 1
        if self.timeseries is not None:
            self.timeseries.bump("sched.switches")

    def record_tcp_segment(self, direction):
        self.tcp_segments[direction] = self.tcp_segments.get(direction, 0) + 1
        if self.timeseries is not None:
            self.timeseries.bump("net.%s" % direction)

    def record_space_switch(self):
        self.space_switches += 1
        if self.timeseries is not None:
            self.timeseries.bump("ept.space_switches")

    def record_window_alloc(self, nbytes, wrapped):
        self.window_allocs += 1
        self.window_bytes += nbytes
        if wrapped:
            self.window_wraps += 1
        if self.timeseries is not None:
            self.timeseries.bump("ept.window_allocs")

    def record_irq(self, line):
        self.irqs[line] = self.irqs.get(line, 0) + 1
        if self.timeseries is not None:
            self.timeseries.bump("irqs")

    def record_fs_op(self, layer, op):
        key = "%s.%s" % (layer, op)
        self.fs_ops[key] = self.fs_ops.get(key, 0) + 1
        if self.timeseries is not None:
            self.timeseries.bump("fs.ops")

    def record_explore_wave(self, scheduled, evaluated, cache_hits, pruned):
        self.explore_waves += 1
        self.explore_scheduled += scheduled
        self.explore_evaluated += evaluated
        self.explore_cache_hits += cache_hits
        self.explore_pruned += pruned

    def record_tlb(self, op):
        self.tlb[op] = self.tlb.get(op, 0) + 1
        if self.timeseries is not None:
            self.timeseries.bump("tlb.%s" % op)

    def record_compile(self, op, n=1):
        self.compile[op] = self.compile.get(op, 0) + n
        if self.timeseries is not None:
            self.timeseries.bump("compile.%s" % op, n)

    def record_reconfig(self, action):
        self.reconfig[action] = self.reconfig.get(action, 0) + 1
        if self.timeseries is not None:
            self.timeseries.bump("reconfig.%s" % action)

    def record_reconfig_blackout(self, cycles, queued):
        self.reconfig_blackout.observe(cycles)
        self.reconfig_queued += queued

    def record_core_dispatch(self, core, depth):
        self.core_dispatches[core] = self.core_dispatches.get(core, 0) + 1
        self.runqueue_depth.observe(depth)
        if self.timeseries is not None:
            self.timeseries.bump("sched.dispatches.core-%d" % core)
            self.timeseries.bump("sched.runqueue_depth", depth)

    # -- derived views ----------------------------------------------------------
    def total_crossings(self):
        return sum(self.gate_crossings.values())

    def crossings_for_pair(self, src, dst):
        """Crossings src->dst summed over gate kinds (names, not indices)."""
        return sum(
            count for (s, d, _), count in self.gate_crossings.items()
            if (s, d) == (src, dst)
        )

    def snapshot(self):
        """A JSON-serialisable snapshot of every aggregate.

        The ``explore``, ``tlb``, ``reconfig`` and ``sched`` sections
        appear only when those subsystems ran under this registry, so
        snapshots of runs that never touch them (the functional
        perf-gate baselines predate all four) keep their exact shape.
        The ``sched`` section and the ``runqueue_depth`` histogram are
        emitted only by the SMP scheduler; serial runs never record a
        core dispatch.
        """
        explore = {}
        if self.explore_waves:
            explore["explore"] = {
                "waves": self.explore_waves,
                "scheduled": self.explore_scheduled,
                "evaluated": self.explore_evaluated,
                "cache_hits": self.explore_cache_hits,
                "pruned": self.explore_pruned,
            }
        if any(self.tlb.values()):
            explore["tlb"] = dict(sorted(self.tlb.items()))
        if self.reconfig or self.reconfig_blackout.total:
            explore["reconfig"] = dict(
                sorted(self.reconfig.items()),
                queued_requests=self.reconfig_queued,
            )
        if self.core_dispatches:
            explore["sched"] = {
                "core-%d" % core: {"dispatches": count}
                for core, count in sorted(self.core_dispatches.items())
            }
        if self.compile:
            explore["compile"] = dict(sorted(self.compile.items()))
        histograms = {
            "gate_latency_cycles": {
                "%s->%s" % pair: histogram.to_dict()
                for pair, histogram in sorted(self.gate_latency.items())
            },
            "alloc_size_bytes": self.alloc_sizes.to_dict(),
        }
        if self.reconfig_blackout.total:
            histograms["reconfig_blackout_cycles"] = (
                self.reconfig_blackout.to_dict()
            )
        if self.runqueue_depth.total:
            histograms["runqueue_depth"] = self.runqueue_depth.to_dict()
        return {
            "counters": {
                "gate_crossings": {
                    "%s->%s/%s" % key: count
                    for key, count in sorted(self.gate_crossings.items())
                },
                "gate_pairs": {
                    "%d->%d" % pair: count
                    for pair, count in sorted(self.gate_pairs.items())
                },
                "crossings_by_library": dict(
                    sorted(self.crossings_by_library.items())
                ),
                "pkru_writes": self.pkru_writes,
                "faults": dict(sorted(self.faults.items())),
                "supervision": dict(sorted(self.supervision.items())),
                "alloc": {
                    "fast": self.alloc_fast,
                    "slow": self.alloc_slow,
                    "free": self.frees,
                },
                "alloc_by_region": dict(
                    sorted(self.alloc_by_region.items())
                ),
                "context_switches": self.context_switches,
                "tcp_segments": dict(self.tcp_segments),
                "address_space_switches": self.space_switches,
                "shared_window": {
                    "allocs": self.window_allocs,
                    "bytes": self.window_bytes,
                    "wraps": self.window_wraps,
                },
                "irqs": {
                    "line-%d" % line: count
                    for line, count in sorted(self.irqs.items())
                },
                "fs_ops": dict(sorted(self.fs_ops.items())),
                **explore,
            },
            "histograms": histograms,
        }

    def __repr__(self):
        return "MetricsRegistry(%d crossings, %d faults)" % (
            self.total_crossings(), sum(self.faults.values()),
        )
