"""Trace analytics: turn the event firehose into answers.

:mod:`repro.obs.tracer` records *what happened*; this module answers the
questions the FlexOS trade-off story actually asks of a run:

* **Which gate pairs dominate?**  :func:`critical_path` attributes every
  virtual cycle spent inside gate spans to exactly one ``src->dst``
  compartment pair (a span's *self*-cycles: its duration minus the time
  nested crossings consumed) and ranks pairs by attributed cycles.
  Because the attribution partitions the time, the per-pair cycles sum
  to the run's total gate cycles — the invariant
  ``tests/test_obs_analysis.py`` pins to within float rounding.
* **Who talks to whom, and at what cost?**  :func:`crossing_matrix`
  folds the same spans into an N x N compartment matrix of crossing
  counts and attributed cycles, rendered as text and JSON.
* **Which micro-library is the boundary tax paid to?**
  :func:`library_attribution` books each span's self-cycles to the
  *callee* micro-library named by the span — the same per-crossing
  attribution :class:`~repro.bench.trace.ProfileRecorder` uses, so the
  analytic profiles and this report can never disagree about who was
  called.
* **What belongs to one request?**  :func:`request_chains` groups spans
  into chains rooted at depth-0 crossings (nested spans are claimed by
  the enclosing root), the unit ``obs report`` summarises per request.

Everything operates on recorded events only — analysis never touches the
clock, so it is free in virtual time like the rest of the layer.
"""

from __future__ import annotations

from repro.errors import ReproError


def _format_table(rows, title=None):
    # Deferred: repro.bench pulls in repro.obs at package-import time
    # (ProfileRecorder rides on the tracer), so importing the table
    # renderer at module scope would be circular.
    from repro.bench.tables import format_table

    return format_table(rows, title=title)


def gate_spans(tracer):
    """All gate spans a tracer recorded (requires ``keep_events``)."""
    events = [e for e in tracer.events if e.cat == "gate"]
    if not events and not getattr(tracer, "keep_events", True):
        raise ReproError(
            "trace analysis needs the event stream; this tracer was "
            "created with keep_events=False"
        )
    return events


class RequestChain:
    """One root gate crossing and every span nested inside it."""

    __slots__ = ("root", "nested")

    def __init__(self, root, nested):
        self.root = root
        self.nested = nested

    @property
    def spans(self):
        return [self.root] + self.nested

    @property
    def cycles(self):
        """Inclusive duration of the chain (the root span's duration)."""
        return self.root.dur

    @property
    def depth(self):
        return 1 + max((e.args["depth"] for e in self.nested), default=0)

    def __repr__(self):
        return "RequestChain(%s, %d spans, %.0f cycles)" % (
            self.root.name, len(self.spans), self.cycles,
        )


def request_chains(events):
    """Group gate spans into chains rooted at depth-0 crossings.

    Spans are recorded at *end* time, so every nested span precedes its
    root in the stream; a closing root claims all pending nested spans
    that began inside its interval.  Returns the chains in completion
    order (spans still open when the trace stopped are dropped — they
    never produced an event).
    """
    chains = []
    pending = []
    for event in events:
        if event.args["depth"] == 0:
            inside = [e for e in pending if e.ts >= event.ts]
            pending = [e for e in pending if e.ts < event.ts]
            chains.append(RequestChain(event, inside))
        else:
            pending.append(event)
    return chains


class PairStat:
    """Attribution bucket for one ``src->dst`` compartment pair."""

    __slots__ = ("src", "dst", "src_comp", "dst_comp", "kind",
                 "crossings", "cycles", "inclusive_cycles", "libraries")

    def __init__(self, src, dst, src_comp, dst_comp, kind):
        self.src = src
        self.dst = dst
        self.src_comp = src_comp
        self.dst_comp = dst_comp
        self.kind = kind
        self.crossings = 0
        self.cycles = 0.0             # attributed self-cycles
        self.inclusive_cycles = 0.0   # span durations (double-counts nests)
        self.libraries = {}

    @property
    def label(self):
        return "%s->%s" % (self.src, self.dst)

    def add(self, event):
        self.crossings += 1
        self.cycles += event.args["self_cycles"]
        self.inclusive_cycles += event.dur
        library = event.args["library"]
        self.libraries[library] = self.libraries.get(library, 0) + 1

    def dominant_library(self):
        """The callee library most often entered through this pair."""
        return max(sorted(self.libraries),
                   key=lambda name: self.libraries[name])

    def to_dict(self, total):
        return {
            "pair": self.label,
            "src_comp": self.src_comp,
            "dst_comp": self.dst_comp,
            "kind": self.kind,
            "crossings": self.crossings,
            "cycles": self.cycles,
            "inclusive_cycles": self.inclusive_cycles,
            "share": self.cycles / total if total else 0.0,
            "libraries": dict(sorted(self.libraries.items())),
        }


class CriticalPath:
    """Gate pairs ranked by attributed virtual cycles.

    ``entries`` covers *every* pair (``top(k)`` trims for display), so
    ``sum(e.cycles for e in entries) == total_gate_cycles`` exactly: the
    self-cycle attribution partitions the root spans' durations.
    """

    def __init__(self, entries, total_gate_cycles, n_chains):
        self.entries = entries
        self.total_gate_cycles = total_gate_cycles
        self.n_chains = n_chains

    def top(self, k=None):
        return self.entries if k is None else self.entries[:k]

    def to_dict(self, top_k=None):
        return {
            "total_gate_cycles": self.total_gate_cycles,
            "chains": self.n_chains,
            "pairs": [e.to_dict(self.total_gate_cycles)
                      for e in self.top(top_k)],
        }

    def to_text(self, top_k=10):
        shown = self.top(top_k)
        rows = [
            {"rank": i + 1,
             "gate pair": entry.label,
             "kind": entry.kind,
             "via": entry.dominant_library(),
             "crossings": entry.crossings,
             "cycles": "%.0f" % entry.cycles,
             "share": "%5.1f%%" % (100.0 * entry.cycles /
                                   self.total_gate_cycles
                                   if self.total_gate_cycles else 0.0)}
            for i, entry in enumerate(shown)
        ]
        title = ("critical path: top %d of %d gate pairs "
                 "(%d chains, %.0f total gate cycles)"
                 % (len(shown), len(self.entries), self.n_chains,
                    self.total_gate_cycles))
        return _format_table(rows, title=title)

    def __repr__(self):
        return "CriticalPath(%d pairs, %.0f cycles)" % (
            len(self.entries), self.total_gate_cycles,
        )


def critical_path(events):
    """Rank gate pairs by attributed self-cycles; see :class:`CriticalPath`."""
    pairs = {}
    for event in events:
        args = event.args
        key = (args["src_comp"], args["dst_comp"])
        stat = pairs.get(key)
        if stat is None:
            stat = pairs[key] = PairStat(
                args["src"], args["dst"], args["src_comp"],
                args["dst_comp"], args["kind"],
            )
        stat.add(event)
    entries = sorted(
        pairs.values(),
        key=lambda s: (-s.cycles, s.src_comp, s.dst_comp),
    )
    total = sum(s.cycles for s in entries)
    n_chains = sum(1 for e in events if e.args["depth"] == 0)
    return CriticalPath(entries, total, n_chains)


class CrossingMatrix:
    """N x N compartment matrix of crossing counts and attributed cycles."""

    def __init__(self, names, counts, cycles):
        #: compartment index -> name, in index order.
        self.names = names
        self.counts = counts
        self.cycles = cycles

    @property
    def indices(self):
        return sorted(self.names)

    def total_crossings(self):
        return sum(self.counts.values())

    def to_dict(self):
        return {
            "compartments": [self.names[i] for i in self.indices],
            "counts": [
                [self.counts.get((i, j), 0) for j in self.indices]
                for i in self.indices
            ],
            "cycles": [
                [self.cycles.get((i, j), 0.0) for j in self.indices]
                for i in self.indices
            ],
        }

    def _ranked_indices(self, top_k):
        """Compartment indices to show: all of them, or the ``top_k``
        hottest by total attributed cycles (row + column), re-sorted to
        index order so the matrix stays readable."""
        indices = self.indices
        if top_k is None or len(indices) <= top_k:
            return indices, []
        involvement = {i: 0.0 for i in indices}
        for (i, j), cycles in self.cycles.items():
            involvement[i] += cycles
            involvement[j] += cycles
        kept = sorted(
            sorted(indices, key=lambda i: (-involvement[i], i))[:top_k]
        )
        omitted = [i for i in indices if i not in set(kept)]
        return kept, omitted

    def to_text(self, top_k=None):
        indices, omitted = self._ranked_indices(top_k)
        rows = []
        for i in indices:
            row = {"from \\ to": self.names[i]}
            for j in indices:
                count = self.counts.get((i, j), 0)
                row[self.names[j]] = (
                    "%d / %.0f" % (count, self.cycles.get((i, j), 0.0))
                    if count else "-"
                )
            rows.append(row)
        title = ("crossing matrix: crossings / attributed cycles "
                 "(%d compartments, %d crossings)"
                 % (len(self.names), self.total_crossings()))
        text = _format_table(rows, title=title)
        if omitted:
            hidden = sum(
                count for (i, j), count in self.counts.items()
                if i not in set(indices) or j not in set(indices)
            )
            text += (
                "\n(%d compartments omitted — %d crossings not shown; "
                "rerun with a larger --top for the full matrix)"
                % (len(omitted), hidden)
            )
        return text

    def __repr__(self):
        return "CrossingMatrix(%d compartments, %d crossings)" % (
            len(self.names), self.total_crossings(),
        )


def crossing_matrix(events):
    """Fold gate spans into the compartment crossing matrix."""
    names = {}
    counts = {}
    cycles = {}
    for event in events:
        args = event.args
        pair = (args["src_comp"], args["dst_comp"])
        names.setdefault(args["src_comp"], args["src"])
        names.setdefault(args["dst_comp"], args["dst"])
        counts[pair] = counts.get(pair, 0) + 1
        cycles[pair] = cycles.get(pair, 0.0) + args["self_cycles"]
    return CrossingMatrix(names, counts, cycles)


def library_attribution(events):
    """Per-callee-library crossing counts and attributed self-cycles.

    Books each span to ``args["library"]`` — the library actually
    entered — exactly as :class:`~repro.bench.trace.ProfileRecorder`
    attributes crossings, so compartments hosting several components
    split correctly.  Returns ``{library: {"crossings", "cycles"}}``.
    """
    attribution = {}
    for event in events:
        library = event.args["library"]
        entry = attribution.setdefault(
            library, {"crossings": 0, "cycles": 0.0},
        )
        entry["crossings"] += 1
        entry["cycles"] += event.args["self_cycles"]
    return attribution


class TraceAnalysis:
    """Everything ``obs report`` derives from one traced run."""

    def __init__(self, tracer, headline=None):
        self.tracer = tracer
        #: Free-form run facts shown in the report header (app,
        #: mechanism, requests, cycles/request ...).
        self.headline = headline or {}
        self.events = gate_spans(tracer)

    def chains(self):
        return request_chains(self.events)

    def critical_path(self):
        return critical_path(self.events)

    def crossing_matrix(self):
        return crossing_matrix(self.events)

    def library_attribution(self):
        return library_attribution(self.events)

    def _library_rows(self, top_k):
        attribution = self.library_attribution()
        ranked = sorted(
            attribution.items(),
            key=lambda item: (-item[1]["cycles"], str(item[0])),
        )[:top_k]
        return [
            {"library": name if name is not None else "(app)",
             "crossings": entry["crossings"],
             "cycles": "%.0f" % entry["cycles"]}
            for name, entry in ranked
        ]

    def to_text(self, top_k=10):
        path = self.critical_path()
        chains = self.chains()
        header = ["== obs report: %s ==" % ", ".join(
            "%s=%s" % (key, value)
            for key, value in self.headline.items()
        )] if self.headline else ["== obs report =="]
        if chains:
            mean = sum(c.cycles for c in chains) / len(chains)
            header.append(
                "%d request chains, mean %.0f gate cycles/chain, "
                "deepest nest %d"
                % (len(chains), mean, max(c.depth for c in chains))
            )
        sections = [
            "\n".join(header),
            path.to_text(top_k),
            self.crossing_matrix().to_text(top_k),
            _format_table(self._library_rows(top_k),
                         title="top callee libraries (attributed cycles)"),
        ]
        return "\n\n".join(sections)

    def to_dict(self, top_k=None):
        return {
            "headline": dict(self.headline),
            "critical_path": self.critical_path().to_dict(top_k),
            "crossing_matrix": self.crossing_matrix().to_dict(),
            "libraries": {
                str(name): entry
                for name, entry in self.library_attribution().items()
            },
        }


def analyze(tracer, headline=None):
    """Build a :class:`TraceAnalysis` for a tracer with recorded events."""
    return TraceAnalysis(tracer, headline=headline)
