"""Exporters: Chrome trace-event JSON, text flamegraph, metrics JSON.

* :func:`chrome_trace` / :func:`chrome_trace_json` — the Trace Event
  Format understood by ``chrome://tracing`` and https://ui.perfetto.dev:
  gate crossings become complete (``"ph": "X"``) events, everything else
  becomes instant (``"ph": "i"``) events.  Timestamps are microseconds
  of *virtual* time at the traced clock's frequency.
* :func:`flamegraph` — folded-stack lines (``a;b;c <self-cycles>``) of
  the gated call stacks, the input format of Brendan Gregg's
  ``flamegraph.pl`` and speedscope.
* :func:`metrics_json` — the registry snapshot, pretty-printed.
"""

from __future__ import annotations

import json

from repro.hw.clock import XEON_4114_HZ


def _cycles_to_us(cycles, freq_hz):
    return cycles * 1e6 / freq_hz


def chrome_trace(tracer, pid=1):
    """Render a tracer's events as a Chrome trace-event dict.

    SMP runs get **one lane per virtual core**: events recorded inside a
    core's slice carry the core index (stamped by the SMP scheduler's
    dispatch hook) and are emitted with ``tid = core``, so per-core
    timelines — and a thread's migrations between them — are visible in
    ``about://tracing``/Perfetto.  Events recorded outside any slice
    (boot, thread creation) land on one extra lane after the cores.
    Serial traces have no core stamps and keep the single legacy lane
    (``tid = 1``).
    """
    freq_hz = tracer.clock.freq_hz if tracer.clock is not None \
        else XEON_4114_HZ
    cores = sorted({
        event.core for event in tracer.events if event.core is not None
    })
    spare_tid = (cores[-1] + 1) if cores else 1
    trace_events = []
    if cores:
        for core in cores:
            trace_events.append({
                "name": "thread_name", "ph": "M", "pid": pid,
                "tid": core, "args": {"name": "core %d" % core},
            })
        trace_events.append({
            "name": "thread_name", "ph": "M", "pid": pid,
            "tid": spare_tid, "args": {"name": "boot/off-core"},
        })
    for event in tracer.events:
        common = {
            "name": event.name,
            "cat": event.cat,
            "ts": _cycles_to_us(event.ts, freq_hz),
            "pid": pid,
            "tid": event.core if event.core is not None else spare_tid,
            "args": _jsonable_args(event.args),
        }
        if event.is_span:
            common["ph"] = "X"
            common["dur"] = _cycles_to_us(event.dur, freq_hz)
        else:
            common["ph"] = "i"
            common["s"] = "t"
        trace_events.append(common)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ns",
        "otherData": {
            "clock": "virtual cycles @ %.2f GHz" % (freq_hz / 1e9),
            "cores": len(cores),
            "events": len(trace_events),
        },
    }


def _jsonable_args(args):
    return {
        key: list(value) if isinstance(value, tuple) else value
        for key, value in args.items()
    }


def chrome_trace_json(tracer, pid=1):
    """The Chrome trace as a JSON string (load it in chrome://tracing)."""
    return json.dumps(chrome_trace(tracer, pid=pid), indent=1)


def _escape_frame(frame):
    """Escape the folded-stack separator inside one frame label.

    ``;`` delimits frames in the folded format, and compartment or
    micro-library names are free to contain it (they come straight from
    the safety configuration).  Substitute ``%3b`` (no un-escaping
    exists in the format, so the substitution must not itself contain
    ``;``); ``%`` is escaped first so the encoding stays injective.
    """
    return frame.replace("%", "%25").replace(";", "%3b")


def flamegraph(tracer):
    """Folded-stack text of the gated call stacks.

    One line per distinct stack path, weighted by self-cycles (span
    duration minus time spent in nested crossings), so the rendered
    flamegraph's widths are virtual cycles spent at that exact depth.
    Frame labels containing the ``;`` separator are escaped to ``%3b``.
    """
    folded = {}
    for event in tracer.events:
        if event.cat != "gate":
            continue
        path = ";".join(_escape_frame(f) for f in event.args["stack"])
        folded[path] = folded.get(path, 0.0) + event.args["self_cycles"]
    return "\n".join(
        "%s %d" % (path, round(cycles))
        for path, cycles in sorted(folded.items())
    )


def metrics_json(registry, extra=None):
    """The metrics snapshot as pretty JSON; ``extra`` merges on top."""
    payload = registry.snapshot()
    if extra:
        payload.update(extra)
    return json.dumps(payload, indent=2, sort_keys=True)
