"""Perf-regression verdicts over schema-versioned metric snapshots.

The benchmarks leave ``BENCH_<name>.json`` trajectory points behind
(:func:`benchmarks.common.write_metrics`); this module turns pairs of
those snapshots into answers:

* :func:`diff_snapshots` — per-metric absolute and relative deltas
  between two snapshots of the *same* benchmark, schema and
  configuration (anything else raises :class:`~repro.errors.ReproError`
  rather than producing a nonsense comparison);
* :func:`check_snapshot` — regression verdicts against a committed
  baseline.  Virtual cycles are deterministic, so the default tolerance
  is **zero**: any unexplained change — in either direction — fails.
  Intentional changes are blessed either by re-recording the baseline or
  by an explicit per-metric allowlist (``fnmatch`` patterns over dotted
  metric paths, e.g. ``points.*.metrics.counters.pkru_writes``);
* :func:`check_baselines` — the CI perf gate: every snapshot under
  ``benchmarks/results/baselines/`` is checked against the
  freshly-generated result of the same name.

Only numeric leaves are compared; the metadata keys ``write_metrics``
embeds (``schema_version``, ``benchmark``, ``config``,
``config_digest``) gate comparability instead of being diffed.
"""

from __future__ import annotations

import fnmatch
import hashlib
import json
import os

from repro.errors import ReproError

#: Version of the ``BENCH_*.json`` trajectory-point layout.  Bump when
#: the payload shape changes incompatibly; ``diff``/``check`` refuse to
#: compare across versions.
SNAPSHOT_SCHEMA_VERSION = 2

#: Top-level payload keys that describe the snapshot rather than
#: measure anything — excluded from the metric diff.
METADATA_KEYS = ("schema_version", "benchmark", "config", "config_digest")

#: Name of the optional allowlist file next to the committed baselines.
ALLOWLIST_FILE = "allowlist.json"


def _format_table(rows, title=None):
    # Deferred: repro.bench pulls in repro.obs at package-import time
    # (ProfileRecorder rides on the tracer), so importing the table
    # renderer at module scope would be circular.
    from repro.bench.tables import format_table

    return format_table(rows, title=title)


def config_digest(config):
    """Short stable digest of a benchmark's configuration dict."""
    payload = json.dumps(config or {}, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


def flatten_metrics(payload):
    """``{dotted.path: number}`` for every numeric leaf of a snapshot.

    Dicts recurse by key, lists by index; booleans count as numbers
    (a flipped invariant is a regression too); strings and nulls are
    descriptive and skipped.  Top-level metadata keys are excluded.
    """
    flat = {}

    def walk(node, prefix):
        if isinstance(node, dict):
            for key in sorted(node):
                walk(node[key], "%s.%s" % (prefix, key) if prefix else key)
        elif isinstance(node, (list, tuple)):
            for i, item in enumerate(node):
                walk(item, "%s.%d" % (prefix, i))
        elif isinstance(node, bool):
            flat[prefix] = int(node)
        elif isinstance(node, (int, float)):
            flat[prefix] = node

    for key in sorted(payload):
        if key not in METADATA_KEYS:
            walk(payload[key], key)
    return flat


def load_snapshot(path):
    """Read one ``BENCH_*.json`` snapshot; refuse unversioned payloads."""
    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "schema_version" not in payload:
        raise ReproError(
            "%s is not a schema-versioned metric snapshot (re-run the "
            "benchmark to regenerate it with write_metrics)" % path
        )
    return payload


def _require_comparable(a, b, a_label="a", b_label="b"):
    """Raise unless two snapshots may be meaningfully compared."""
    for key, what in (("schema_version", "schema version"),
                      ("benchmark", "benchmark"),
                      ("config_digest", "config digest")):
        left, right = a.get(key), b.get(key)
        if left != right:
            raise ReproError(
                "refusing to compare snapshots across %ss: "
                "%s has %s=%r, %s has %s=%r"
                % (what, a_label, key, left, b_label, key, right)
            )


class MetricDelta:
    """One metric's change between baseline and current snapshot."""

    __slots__ = ("path", "baseline", "current", "status")

    def __init__(self, path, baseline, current, status):
        self.path = path
        self.baseline = baseline
        self.current = current
        self.status = status  # ok | changed | allowed | added | removed

    @property
    def delta(self):
        if self.baseline is None or self.current is None:
            return None
        return self.current - self.baseline

    @property
    def relative(self):
        if self.delta is None or not self.baseline:
            return None
        return self.delta / self.baseline

    def row(self):
        rel = self.relative
        return {
            "metric": self.path,
            "baseline": "-" if self.baseline is None else
                        "%g" % self.baseline,
            "current": "-" if self.current is None else "%g" % self.current,
            "delta": "-" if self.delta is None else "%+g" % self.delta,
            "rel": "-" if rel is None else "%+.2f%%" % (100.0 * rel),
            "status": self.status,
        }

    def __repr__(self):
        return "MetricDelta(%s: %r -> %r, %s)" % (
            self.path, self.baseline, self.current, self.status,
        )


class SnapshotDiff:
    """All metric deltas between two comparable snapshots."""

    def __init__(self, benchmark, deltas):
        self.benchmark = benchmark
        self.deltas = deltas

    def changed(self):
        return [d for d in self.deltas if d.status != "ok"]

    def to_text(self, include_unchanged=False):
        shown = self.deltas if include_unchanged else self.changed()
        if not shown:
            return ("%s: %d metrics compared, no differences"
                    % (self.benchmark, len(self.deltas)))
        title = "%s: %d of %d metrics differ" % (
            self.benchmark, len(self.changed()), len(self.deltas),
        )
        return _format_table([d.row() for d in shown], title=title)

    def __repr__(self):
        return "SnapshotDiff(%s, %d changed of %d)" % (
            self.benchmark, len(self.changed()), len(self.deltas),
        )


def diff_snapshots(baseline, current, baseline_label="baseline",
                   current_label="current"):
    """Per-metric deltas between two snapshot payloads (same benchmark)."""
    _require_comparable(baseline, current, baseline_label, current_label)
    base_flat = flatten_metrics(baseline)
    cur_flat = flatten_metrics(current)
    deltas = []
    for path in sorted(set(base_flat) | set(cur_flat)):
        in_base, in_cur = path in base_flat, path in cur_flat
        if in_base and in_cur:
            status = "ok" if base_flat[path] == cur_flat[path] else "changed"
            deltas.append(MetricDelta(path, base_flat[path],
                                      cur_flat[path], status))
        elif in_base:
            deltas.append(MetricDelta(path, base_flat[path], None,
                                      "removed"))
        else:
            deltas.append(MetricDelta(path, None, cur_flat[path], "added"))
    return SnapshotDiff(current.get("benchmark", "?"), deltas)


def _allowed(path, allow):
    return any(fnmatch.fnmatchcase(path, pattern) for pattern in allow)


class SnapshotVerdict:
    """Regression verdict for one benchmark against its baseline."""

    def __init__(self, benchmark, diff, allow=(), error=None):
        self.benchmark = benchmark
        self.diff = diff
        self.error = error
        self.regressions = []
        self.allowed = []
        if diff is not None:
            for delta in diff.changed():
                if _allowed(delta.path, allow):
                    delta.status = "allowed"
                    self.allowed.append(delta)
                else:
                    self.regressions.append(delta)

    @property
    def ok(self):
        return self.error is None and not self.regressions

    def summary_line(self):
        if self.error is not None:
            return "FAIL %s: %s" % (self.benchmark, self.error)
        if self.regressions:
            return ("FAIL %s: %d unexplained metric change(s), %d allowed"
                    % (self.benchmark, len(self.regressions),
                       len(self.allowed)))
        return "ok   %s: %d metrics match baseline%s" % (
            self.benchmark, len(self.diff.deltas),
            ", %d allowed change(s)" % len(self.allowed)
            if self.allowed else "",
        )

    def to_text(self):
        lines = [self.summary_line()]
        flagged = self.regressions + self.allowed
        if flagged:
            lines.append(_format_table([d.row() for d in flagged]))
        return "\n".join(lines)


def check_snapshot(baseline, current, allow=(), name=None):
    """Zero-tolerance regression check of ``current`` against ``baseline``."""
    benchmark = name or current.get("benchmark", "?")
    try:
        diff = diff_snapshots(baseline, current)
    except ReproError as exc:
        return SnapshotVerdict(benchmark, None, error=str(exc))
    return SnapshotVerdict(benchmark, diff, allow=allow)


def load_allowlist(baselines_dir):
    """Patterns from ``<baselines_dir>/allowlist.json`` (empty if absent)."""
    path = os.path.join(baselines_dir, ALLOWLIST_FILE)
    if not os.path.exists(path):
        return []
    with open(path) as handle:
        payload = json.load(handle)
    patterns = payload.get("allow", [])
    if not isinstance(patterns, list) or \
            not all(isinstance(p, str) for p in patterns):
        raise ReproError(
            "%s must contain {\"allow\": [\"pattern\", ...]}" % path
        )
    return patterns


class BaselineReport:
    """The perf gate's verdicts over every committed baseline."""

    def __init__(self, verdicts, skipped=()):
        self.verdicts = verdicts
        #: Current snapshots with no committed baseline (informational).
        self.skipped = list(skipped)

    @property
    def ok(self):
        return bool(self.verdicts) and all(v.ok for v in self.verdicts)

    def to_text(self):
        lines = [v.to_text() for v in self.verdicts]
        for name in self.skipped:
            lines.append("skip %s: no committed baseline" % name)
        if not self.verdicts:
            lines.append("FAIL: no baselines found to check against")
        lines.append("perf gate: %s" % ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def check_baselines(results_dir, baselines_dir, allow=()):
    """Check every committed baseline against the current results.

    A baseline with no current snapshot fails (the benchmark stopped
    emitting its trajectory point); a current snapshot with no baseline
    is reported as skipped (commit one to put it under the gate).
    """
    if not os.path.isdir(baselines_dir):
        raise ReproError("no baseline directory at %s" % baselines_dir)
    allow = list(allow) + load_allowlist(baselines_dir)
    names = sorted(
        name for name in os.listdir(baselines_dir)
        if name.startswith("BENCH_") and name.endswith(".json")
    )
    verdicts = []
    for name in names:
        baseline = load_snapshot(os.path.join(baselines_dir, name))
        current_path = os.path.join(results_dir, name)
        if not os.path.exists(current_path):
            verdicts.append(SnapshotVerdict(
                baseline.get("benchmark", name), None,
                error="baseline committed but no current snapshot at %s "
                      "(did the benchmark run?)" % current_path,
            ))
            continue
        current = load_snapshot(current_path)
        verdicts.append(check_snapshot(baseline, current, allow=allow))
    skipped = sorted(
        name for name in (os.listdir(results_dir)
                          if os.path.isdir(results_dir) else ())
        if name.startswith("BENCH_") and name.endswith(".json")
        and name not in names
    )
    return BaselineReport(verdicts, skipped=skipped)
