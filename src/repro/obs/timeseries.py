"""Windowed telemetry: the streaming half of the observability layer.

The :class:`~repro.obs.metrics.MetricsRegistry` answers "what did the
whole run cost?"; this module answers "what was happening *around cycle
T*?" — the question a tail-latency explorer or an online re-exploration
policy has to ask.  :class:`WindowedTelemetry` buckets every counter the
registry sees (plus request latencies) into fixed-width virtual-clock
windows and keeps a bounded **flight recorder** of the most recent ones.

Design constraints, in order:

* **Deterministic.**  Windows are keyed by ``floor(ts / window_cycles)``
  on the virtual clock; snapshots sort every key.  Two runs of the same
  seeded workload produce byte-identical snapshots.
* **Warp-tolerant.**  The SMP scheduler moves the shared clock backwards
  between slices (:meth:`~repro.hw.clock.Clock.warp_to`), so samples do
  *not* arrive in timestamp order.  Windows therefore live in a dict
  keyed by index, not an append-only list; a sample for an
  already-evicted window is counted in :attr:`dropped` (deterministic —
  eviction depends only on the sample stream) rather than resurrecting
  the window.
* **Bounded.**  At most ``ring`` windows are retained; the lowest index
  is evicted first, so the recorder always holds the most recent span of
  activity regardless of run length.
* **Free in virtual time.**  Like the tracer, this module only *reads*
  ``clock.cycles``; it never charges.

See ``docs/observability.md`` ("Windowed telemetry") for the snapshot
schema.
"""

from __future__ import annotations

from repro.errors import ReproError

#: Default window width: 100k cycles ~ 45us at the Xeon 4114's 2.2 GHz,
#: a few requests per window at the load harness's default rates.
DEFAULT_WINDOW_CYCLES = 100_000.0

#: Default flight-recorder depth (windows retained).
DEFAULT_RING = 64


class _Window:
    """One telemetry window: counters plus per-series latency stats."""

    __slots__ = ("index", "counters", "latency")

    def __init__(self, index):
        self.index = index
        self.counters = {}
        self.latency = {}

    def bump(self, name, value):
        self.counters[name] = self.counters.get(name, 0.0) + value

    def observe(self, name, value):
        stats = self.latency.get(name)
        if stats is None:
            self.latency[name] = [1, value, value, value]
        else:
            stats[0] += 1
            stats[1] += value
            if value < stats[2]:
                stats[2] = value
            if value > stats[3]:
                stats[3] = value

    def to_dict(self):
        return {
            "index": self.index,
            "counters": dict(sorted(self.counters.items())),
            "latency": {
                name: {"count": s[0], "sum": s[1], "min": s[2], "max": s[3],
                       "mean": s[1] / s[0]}
                for name, s in sorted(self.latency.items())
            },
        }


class WindowedTelemetry:
    """Fixed-window counters and latency stats on the virtual clock.

    Args:
        clock: the :class:`~repro.hw.clock.Clock` samples are stamped
            with.  May be ``None`` at construction and attached later
            with :meth:`bind_clock` (the :class:`~repro.obs.hub.TelemetryHub`
            does this because the instance clock exists only after boot);
            samples taken unbound land in window 0.
        window_cycles: window width in virtual cycles.
        ring: flight-recorder depth — windows retained before the oldest
            is evicted.
    """

    def __init__(self, clock=None, window_cycles=DEFAULT_WINDOW_CYCLES,
                 ring=DEFAULT_RING):
        if window_cycles <= 0:
            raise ReproError(
                "window width must be positive: %r" % window_cycles)
        if ring < 1:
            raise ReproError("need at least one window: %r" % ring)
        self.clock = clock
        self.window_cycles = float(window_cycles)
        self.ring = ring
        #: window index -> :class:`_Window`, at most ``ring`` entries.
        self._windows = {}
        #: Lowest index a sample may still land in; anything below has
        #: been evicted and is counted in :attr:`dropped` instead.
        self._floor = 0
        #: Samples that arrived for an already-evicted window.
        self.dropped = 0
        #: Total samples accepted (counter bumps + latency observations).
        self.samples = 0
        #: Windows evicted from the ring so far.
        self.evicted = 0

    def bind_clock(self, clock):
        """Attach the clock samples are stamped with (idempotent)."""
        self.clock = clock

    # -- ingest ----------------------------------------------------------------
    def _now(self):
        return self.clock.cycles if self.clock is not None else 0.0

    def window_index(self, ts):
        """The window a virtual timestamp falls in."""
        return int(ts // self.window_cycles)

    def _window_at(self, ts):
        index = self.window_index(ts)
        if index < self._floor:
            self.dropped += 1
            return None
        window = self._windows.get(index)
        if window is None:
            window = self._windows[index] = _Window(index)
            while len(self._windows) > self.ring:
                evict = min(self._windows)
                del self._windows[evict]
                self.evicted += 1
                self._floor = evict + 1
        return window

    def bump(self, name, value=1.0, ts=None):
        """Add ``value`` to counter ``name`` in the current window."""
        window = self._window_at(self._now() if ts is None else ts)
        if window is not None:
            self.samples += 1
            window.bump(name, value)

    def observe(self, name, value, ts=None):
        """Record one latency/size observation in the current window."""
        window = self._window_at(self._now() if ts is None else ts)
        if window is not None:
            self.samples += 1
            window.observe(name, value)

    # -- read API ---------------------------------------------------------------
    def windows(self):
        """Retained windows in ascending index order."""
        return [self._windows[i] for i in sorted(self._windows)]

    def window_series(self, name):
        """``(index, value)`` pairs of one counter across the ring."""
        return [
            (w.index, w.counters[name]) for w in self.windows()
            if name in w.counters
        ]

    def rate_per_window(self, name):
        """Mean of counter ``name`` over the retained windows."""
        series = self.window_series(name)
        if not series:
            return 0.0
        return sum(value for _, value in series) / len(series)

    def snapshot(self):
        """A JSON-serialisable, deterministically ordered snapshot."""
        return {
            "window_cycles": self.window_cycles,
            "ring": self.ring,
            "samples": self.samples,
            "dropped": self.dropped,
            "evicted": self.evicted,
            "windows": [w.to_dict() for w in self.windows()],
        }

    def __repr__(self):
        return "WindowedTelemetry(%d windows, %d samples, %d dropped)" % (
            len(self._windows), self.samples, self.dropped,
        )
