"""Vanilla Unikraft baseline.

On KVM: the unikernel performance ceiling — kernel facilities are function
calls, so a transaction costs exactly its work (FlexOS without isolation
must match this, the "you only pay for what you get" property).

On *linuxu* (Unikraft's Linux userland debug platform, which CubicleOS
builds on): the image runs in Ring 3 and privileged operations become
Linux syscalls, which is the first reason the paper gives for CubicleOS'
slowness.
"""

from __future__ import annotations

from repro.baselines.base import BaselineOS
from repro.errors import ConfigError

#: Privileged operations per transaction on linuxu (page-table updates,
#: timer reads, I/O that KVM-side Unikraft does with plain instructions).
LINUXU_PRIV_SYSCALLS = 45


class UnikraftBaseline(BaselineOS):
    """Unikraft v0.5 on KVM or linuxu (TLSF allocator)."""

    def __init__(self, platform="kvm"):
        if platform not in ("kvm", "linuxu"):
            raise ConfigError("unknown Unikraft platform %r" % platform)
        self.platform = platform
        self.name = "unikraft-%s" % platform

    def transaction_cycles(self, profile, costs):
        cycles = self._work_and_allocs(profile)
        if self.platform == "linuxu":
            cycles += LINUXU_PRIV_SYSCALLS * (
                costs.syscall + costs.linux_kernel_op
            )
        return cycles
