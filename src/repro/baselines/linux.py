"""Monolithic Linux baseline.

"the userland Linux version ... performs a large number of system calls"
(Fig. 10 discussion).  Every filesystem and time operation of the
transaction crosses the user/kernel boundary; the per-syscall latency is
the quantity Fig. 11b compares against gate latencies, with and without
KPTI.
"""

from __future__ import annotations

from repro.baselines.base import BaselineOS

#: Syscalls per SQLite INSERT transaction (open/write/fsync/close of the
#: journal, pwrite+fsync of the database, unlink, clock_gettime x2, plus
#: fd bookkeeping).
SYSCALLS_PER_TXN = 14


class LinuxBaseline(BaselineOS):
    """Linux with ext4-style journalling semantics on a ramdisk."""

    def __init__(self, kpti=False):
        self.kpti = kpti
        self.name = "linux-kpti" if kpti else "linux"

    def syscall_cost(self, costs):
        return costs.syscall_kpti if self.kpti else costs.syscall

    def gate_latency(self, costs):
        """The Fig. 11b 'syscall' bar."""
        return self.syscall_cost(costs)

    def transaction_cycles(self, profile, costs):
        return (
            self._work_and_allocs(profile)
            + SYSCALLS_PER_TXN * (
                self.syscall_cost(costs) + costs.linux_kernel_op
            )
        )
