"""Baseline operating systems the paper compares against (Fig. 10, 11b).

Each baseline charges the per-operation taxes the paper attributes to it:

* :class:`~repro.baselines.unikraft.UnikraftBaseline` — vanilla Unikraft
  on KVM (no isolation, the performance ceiling) or on *linuxu* (Ring 3,
  privileged operations become Linux syscalls).
* :class:`~repro.baselines.linux.LinuxBaseline` — monolithic kernel:
  every fs/time operation is a syscall (with or without KPTI).
* :class:`~repro.baselines.sel4.Sel4GenodeBaseline` — microkernel: every
  operation is IPC through user-level servers (two round trips: client ->
  VFS server -> driver).
* :class:`~repro.baselines.cubicleos.CubicleOsBaseline` — the
  compartmentalised LibOS on linuxu: domain transitions via
  ``pkey_mprotect`` syscalls plus trap-and-map faults, Lea allocator.
"""

from repro.baselines.cubicleos import CubicleOsBaseline
from repro.baselines.linux import LinuxBaseline
from repro.baselines.sel4 import Sel4GenodeBaseline
from repro.baselines.unikraft import UnikraftBaseline

__all__ = [
    "CubicleOsBaseline",
    "LinuxBaseline",
    "Sel4GenodeBaseline",
    "UnikraftBaseline",
]
