"""CubicleOS baseline (Sartakov et al., ASPLOS'21).

A compartmentalised LibOS that also extends Unikraft, but (the paper's
Fig. 10 analysis):

1. runs on *linuxu* — Ring 3, privileged operations are Linux syscalls;
2. does not program MPK directly — domain transitions go through
   ``pkey_mprotect`` syscalls ("making domain transitions orders of
   magnitude more expensive and the TCB thousands of times larger");
3. uses *trap-and-map*: unshared data faults on first touch and is mapped
   in by a SIGSEGV handler (FlexOS avoids this with ``__shared``
   annotations);
4. ships Doug Lea's allocator, which beats Unikraft's TLSF on this
   workload — why CubicleOS-without-isolation outruns the linuxu baseline.
"""

from __future__ import annotations

from repro.baselines.base import BaselineOS
from repro.baselines.unikraft import LINUXU_PRIV_SYSCALLS

#: pkey_mprotect calls per domain crossing (open the callee's cubicle,
#: close the caller's).
PKEY_MPROTECT_PER_CROSSING = 2

#: Trap-and-map faults per crossing (first-touch of exchanged data; later
#: touches of already-mapped windows are free).
TRAPS_PER_CROSSING = 1


class CubicleOsBaseline(BaselineOS):
    """CubicleOS with 1-3 page-table-isolated cubicles."""

    # Doug Lea's dlmalloc fast paths.
    alloc_cost = 80.0
    free_cost = 50.0

    def __init__(self, compartments=1):
        self.compartments = compartments
        self.name = (
            "cubicleos-none" if compartments <= 1
            else "cubicleos-pt%d" % compartments
        )

    def crossing_cost(self, costs):
        return (
            PKEY_MPROTECT_PER_CROSSING * costs.pkey_mprotect
            + TRAPS_PER_CROSSING * costs.trap_and_map_fault
        )

    def _crossings(self, profile):
        """Round trips per transaction at this compartment count.

        Mirrors the Fig. 10 scenarios: PT2 isolates the filesystem (fs
        crossings only), PT3 additionally isolates the time subsystem.
        """
        if self.compartments <= 1:
            return 0
        crossings = profile.fs_ops
        if self.compartments >= 3:
            crossings += profile.time_ops
        return crossings

    def transaction_cycles(self, profile, costs):
        cycles = self._work_and_allocs(profile)
        cycles += LINUXU_PRIV_SYSCALLS * (
            costs.syscall + costs.linux_kernel_op
        )
        cycles += self._crossings(profile) * self.crossing_cost(costs)
        return cycles
