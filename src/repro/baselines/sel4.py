"""SeL4 + Genode microkernel baseline.

In the Genode system every kernel service is a user-level component:
a filesystem operation travels client -> VFS server -> block/ram driver
and back, i.e. two IPC round trips, each round trip costing two SeL4 IPC
hops.  Time reads cross to the timer driver the same way.
"""

from __future__ import annotations

from repro.baselines.base import BaselineOS

#: IPC round trips per kernel-service operation (client->server->driver).
ROUND_TRIPS_PER_OP = 2


class Sel4GenodeBaseline(BaselineOS):
    """SeL4 kernel with the Genode component system."""

    name = "sel4-genode"

    def gate_latency(self, costs):
        """One IPC hop, for latency comparisons."""
        return costs.microkernel_ipc

    def transaction_cycles(self, profile, costs):
        ops = profile.fs_ops + profile.time_ops
        ipc_cycles = ops * ROUND_TRIPS_PER_OP * 2 * costs.microkernel_ipc
        return self._work_and_allocs(profile) + ipc_cycles
