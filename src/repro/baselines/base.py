"""Common baseline machinery."""

from __future__ import annotations

from repro.hw.clock import XEON_4114_HZ


class BaselineOS:
    """A comparator OS priced per workload-profile transaction.

    Subclasses implement :meth:`transaction_cycles`, the cycles one
    profile "request" (an SQLite INSERT transaction for Fig. 10) costs on
    that OS.  The shared helpers convert to wall-clock figures.
    """

    name = "baseline"

    #: malloc/free fast-path costs of the OS' default allocator.
    alloc_cost = 110.0
    free_cost = 60.0

    def transaction_cycles(self, profile, costs):
        raise NotImplementedError

    def _work_and_allocs(self, profile):
        """Pure application+kernel work plus allocator traffic."""
        return (
            sum(profile.work.values())
            + profile.alloc_pairs * (self.alloc_cost + self.free_cost)
        )

    def run_workload(self, profile, costs, n_transactions):
        """Total seconds for ``n_transactions`` (the Fig. 10 metric)."""
        per_txn = self.transaction_cycles(profile, costs)
        return n_transactions * per_txn / XEON_4114_HZ

    def __repr__(self):
        return "%s()" % type(self).__name__
