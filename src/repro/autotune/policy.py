"""The autotune policy: rank harden-ladder layouts against live telemetry.

:class:`AutotunePolicy` is the telemetry-driven half of the closed
loop.  Each decision it:

1. checks the *triggers* — recent-window SLO burn, or the gate share of
   the latency decomposition — against thresholds;
2. if one fired, prices every admissible ladder rung with a
   :class:`~repro.explore.evaluators.LiveEvaluator` built from the
   sampled signal, through the ordinary :func:`~repro.explore.explorer
   .explore` engine (so rankings cache, pickle and sweep exactly like
   offline explorations);
3. applies *hysteresis*: migrate only when the best rung beats the
   current rung's own predicted value by ``min_improvement`` (absolute,
   in objective units), so noise never thrashes the engine.

Admissibility is a ladder *floor* (:attr:`AutotunePolicy.floor`): the
loop raises it when fault pressure hardens the instance, and the policy
then never proposes a layout below it — fault history constrains what
performance tuning may pick, the paper's safety-first ordering applied
at run time.

Every decision — proposal or not — is returned as a rich
:class:`Decision` so the loop can journal the full chain: signal
snapshot, trigger, candidate ranking, chosen target, reason.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.apps.base import ComponentLayout
from repro.errors import ConfigError
from repro.explore.evaluators import LiveEvaluator
from repro.explore.explorer import ExplorationRequest, explore
from repro.explore.measurement import OBJECTIVES
from repro.reconfig.driver import reconfig_config
from repro.reconfig.harden import HARDEN_LADDER, ladder_position
from repro.reconfig.policy import (
    Proposal,
    ReconfigurationPolicy,
    register_reconfig_policy,
)

#: Components priced as "everything not isolated" in ladder layouts.
CORE_GROUP = ("core",)

#: Budget low enough that exploration labels every candidate instead of
#: pruning: the autotuner needs the full ranking for its journal.
RANK_EVERYTHING = -1e18


def rung_name(mechanism, mpk_gate):
    """Canonical ``mechanism/gate`` label for a ladder rung.

    Off-ladder layouts keep their raw pair (so journals stay honest);
    non-MPK mechanisms normalise to the ladder's gate spelling.
    """
    pos = ladder_position(mechanism, mpk_gate)
    if pos < 0:
        return "%s/%s" % (mechanism, mpk_gate)
    mech, gate = HARDEN_LADDER[pos]
    return "%s/%s" % (mech, gate)


def ladder_layouts(isolate=("lwip",)):
    """One two-group :class:`ComponentLayout` per harden-ladder rung.

    The partition mirrors :func:`~repro.reconfig.driver.reconfig_config`
    (default core group + one isolated group), so a layout's name maps
    one-to-one onto a migratable SafetyConfig.
    """
    partition = (frozenset(CORE_GROUP), frozenset(isolate))
    return [
        ComponentLayout(
            "%s/%s" % (mechanism, gate), partition,
            mechanism=mechanism, mpk_gate=gate, sharing="dss",
        )
        for mechanism, gate in HARDEN_LADDER
    ]


@dataclass
class Decision:
    """One complete autotune step, journal-ready."""

    #: Telemetry window index the decision was taken at.
    window: int
    #: Canonical rung name the instance is currently on.
    current: str
    #: Machine-readable trigger (``kind`` key), or ``None``.
    trigger: Any = None
    #: Full candidate ranking, best first: ``{layout, value, predicted}``.
    ranking: list = field(default_factory=list)
    #: Rung name migrated to, or ``None`` when staying put.
    chosen: Any = None
    #: Why: ``no-signal`` | ``no-trigger`` | ``already-best`` |
    #: ``hysteresis`` | ``migrate``.
    reason: str = "no-trigger"
    #: The SafetyConfig to migrate to (``reason == "migrate"`` only).
    target: Any = None
    #: Evaluator calls this decision actually ran / answered from cache.
    fresh_evaluations: int = 0
    cache_hits: int = 0


@register_reconfig_policy
class AutotunePolicy(ReconfigurationPolicy):
    """Telemetry-triggered exploration over the harden ladder."""

    name = "autotune"

    def __init__(self, burn_threshold=1.0, gate_share_threshold=0.6,
                 min_improvement=0.02, recent_windows=4,
                 objective="slo_headroom", slo_name=None,
                 isolate=("lwip",), cache=None, floor=0):
        if objective not in OBJECTIVES:
            raise ConfigError(
                "unknown objective %r (one of: %s)"
                % (objective, ", ".join(OBJECTIVES))
            )
        if recent_windows < 1:
            raise ConfigError("recent_windows must be >= 1")
        if not 0 <= floor < len(HARDEN_LADDER):
            raise ConfigError(
                "floor must index the ladder (0..%d), got %r"
                % (len(HARDEN_LADDER) - 1, floor)
            )
        self.burn_threshold = float(burn_threshold)
        self.gate_share_threshold = float(gate_share_threshold)
        self.min_improvement = float(min_improvement)
        self.recent_windows = int(recent_windows)
        self.objective = objective
        self.slo_name = slo_name
        self.isolate = tuple(isolate)
        self.cache = cache
        #: Lowest admissible ladder rung; raised by the loop on harden.
        self.floor = int(floor)
        self.layouts = ladder_layouts(self.isolate)

    # -- signal plumbing ---------------------------------------------------

    def _slo(self, signal):
        """(name, slo-dict) of the SLO this policy watches, or (None, None)."""
        slos = signal.get("slo") or {}
        if self.slo_name is not None:
            if self.slo_name not in slos:
                raise ConfigError(
                    "signal has no SLO %r (have: %s)"
                    % (self.slo_name, ", ".join(sorted(slos)) or "none")
                )
            return self.slo_name, slos[self.slo_name]
        if not slos:
            return None, None
        name = sorted(slos)[0]
        return name, slos[name]

    def _trigger(self, signal):
        """The trigger dict when a threshold is crossed, else ``None``."""
        name, _slo = self._slo(signal)
        if name is not None:
            active = [w for w in signal["windows"]
                      if w.get("requests", 0) > 0]
            recent = active[-self.recent_windows:]
            if recent:
                burn = (sum(w["burn"].get(name, 0.0) for w in recent)
                        / len(recent))
                if burn >= self.burn_threshold:
                    return {"kind": "slo-burn", "slo": name, "burn": burn,
                            "threshold": self.burn_threshold,
                            "windows": len(recent)}
        share = signal["decomposition"]["shares"].get("gate_cycles", 0.0)
        if share >= self.gate_share_threshold:
            return {"kind": "gate-share", "share": share,
                    "threshold": self.gate_share_threshold}
        return None

    def current_rung(self, instance):
        """Canonical rung name of the instance's booted layout."""
        image = instance.image
        return rung_name(image.backend_name, image.config.mpk_gate)

    # -- ranking -----------------------------------------------------------

    def _rank(self, state, signal):
        """Explore admissible rungs under the live signal; best first."""
        name, slo = self._slo(signal)
        threshold = error_budget = None
        if slo is not None and slo.get("target"):
            threshold = slo["target"]["threshold_cycles"]
            error_budget = 1.0 - slo["target"]["objective"]
        objective = self.objective
        if threshold is None and objective == "slo_headroom":
            objective = "throughput"  # headroom is undefined without an SLO
        image = state.instance.image
        evaluator = LiveEvaluator(
            signal, image.backend_name,
            source_mpk_gate=image.config.mpk_gate,
            slo_threshold_cycles=threshold,
            error_budget=(error_budget if error_budget else 0.01),
            objective=objective,
        )
        candidates = self.layouts[self.floor:]
        result = explore(ExplorationRequest(
            layouts=candidates, evaluator=evaluator,
            budget=RANK_EVERYTHING, assume_monotonic=False,
            cache=self.cache,
        ))
        ranking = sorted(
            (
                {"layout": layout_name,
                 "value": measurement.value,
                 "predicted": dict(measurement.meta.get("predicted", {}))}
                for layout_name, measurement in result.measurements.items()
            ),
            key=lambda row: (-row["value"], row["layout"]),
        )
        return ranking, result

    # -- decisions ---------------------------------------------------------

    def decide(self, state):
        """The full :class:`Decision` for one sampled window."""
        signal = state.signal
        window = state.window
        if not signal or not any(
            w.get("requests", 0) > 0 for w in signal.get("windows", ())
        ):
            current = (self.current_rung(state.instance)
                       if state.instance is not None else "unknown")
            return Decision(window, current, reason="no-signal")
        current = self.current_rung(state.instance)
        trigger = self._trigger(signal)
        if trigger is None:
            return Decision(window, current, reason="no-trigger")
        ranking, result = self._rank(state, signal)
        best = ranking[0]
        stats = {"fresh_evaluations": result.fresh_evaluations,
                 "cache_hits": result.cache_hits}
        if best["layout"] == current:
            return Decision(window, current, trigger, ranking,
                            reason="already-best", **stats)
        current_value = next(
            (row["value"] for row in ranking if row["layout"] == current),
            None,
        )
        if (current_value is not None
                and best["value"] - current_value < self.min_improvement):
            return Decision(window, current, trigger, ranking,
                            reason="hysteresis", **stats)
        mechanism, gate = best["layout"].split("/")
        target = reconfig_config(mechanism, gate, isolate=self.isolate)
        return Decision(window, current, trigger, ranking,
                        chosen=best["layout"], reason="migrate",
                        target=target, **stats)

    def propose(self, state):
        """Protocol adapter: the decision's migration, or ``None``."""
        decision = self.decide(state)
        if decision.target is None:
            return None
        return Proposal(decision.target, "autotune:%s" % decision.reason,
                        decision.trigger, decision.ranking)
