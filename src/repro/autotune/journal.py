"""The autotune decision journal: every step, attributable and checkable.

The loop records one entry per sampled step — including steps that did
*nothing*, because "the trigger fired but cooldown held" is exactly the
evidence an SLO post-mortem needs.  Entries are plain data (stable key
order under ``json.dumps(sort_keys=True)``), carry no wall-clock or
cache-statistics noise, and therefore reproduce byte-identically on a
warm rerun of the same seed: the ranking comes back from the evaluation
cache, the journal comes back from determinism.

:meth:`DecisionJournal.check` enforces the structural invariants the CI
smoke job asserts — monotone steps, known reasons, trigger/migration
consistency, and the big one: *no migration is ever issued inside a
cooldown window*.
"""

from __future__ import annotations

from repro.errors import ReproError

#: Every reason a journal entry may carry.
KNOWN_REASONS = (
    "no-signal",      # telemetry has no completed traffic yet
    "no-trigger",     # thresholds quiet; nothing to do
    "already-best",   # trigger fired, current rung ranked best
    "hysteresis",     # best rung's edge under min_improvement
    "cooldown",       # a migration was wanted but cooldown held it
    "at-ladder-top",  # harden wanted, no stricter rung exists
    "migrated",       # autotune migration issued (see ``migration``)
    "hardened",       # fault-pressure migration issued
)

#: Reasons that mean "a migration was actually issued this step".
MIGRATION_REASONS = ("migrated", "hardened")

#: Reasons that carry no trigger (nothing fired).
QUIET_REASONS = ("no-signal", "no-trigger")

#: Keys every entry must have, in schema order.
ENTRY_KEYS = ("step", "window", "policy", "reason", "current", "chosen",
              "trigger", "ranking", "signal", "cooldown_until_window",
              "migration")

JOURNAL_SCHEMA = 1


class DecisionJournal:
    """Append-only record of autotune-loop decisions."""

    def __init__(self):
        self.entries = []

    def __len__(self):
        return len(self.entries)

    def record(self, *, window, policy, reason, current, chosen=None,
               trigger=None, ranking=(), signal=None,
               cooldown_until_window=0, migration=None):
        """Append one entry; the step index is assigned here."""
        entry = {
            "step": len(self.entries),
            "window": int(window),
            "policy": policy,
            "reason": reason,
            "current": current,
            "chosen": chosen,
            "trigger": trigger,
            "ranking": [dict(row) for row in ranking],
            "signal": dict(signal or {}),
            "cooldown_until_window": int(cooldown_until_window),
            "migration": dict(migration) if migration else None,
        }
        self.entries.append(entry)
        return entry

    @property
    def migrations(self):
        """Entries that issued a migration."""
        return [e for e in self.entries if e["reason"] in MIGRATION_REASONS]

    def check(self):
        """Validate the journal's invariants; raises ReproError on breach."""
        cooldown_until = 0
        for index, entry in enumerate(self.entries):
            where = "journal entry %d" % index
            missing = [k for k in ENTRY_KEYS if k not in entry]
            if missing:
                raise ReproError(
                    "%s missing keys: %s" % (where, ", ".join(missing)))
            if entry["step"] != index:
                raise ReproError(
                    "%s has step %r, expected %d"
                    % (where, entry["step"], index))
            if index and entry["window"] < self.entries[index - 1]["window"]:
                raise ReproError(
                    "%s window %d precedes previous window %d"
                    % (where, entry["window"],
                       self.entries[index - 1]["window"]))
            reason = entry["reason"]
            if reason not in KNOWN_REASONS:
                raise ReproError("%s has unknown reason %r" % (where, reason))
            if (entry["trigger"] is None) != (reason in QUIET_REASONS):
                raise ReproError(
                    "%s: reason %r inconsistent with trigger %r"
                    % (where, reason, entry["trigger"]))
            issued = reason in MIGRATION_REASONS
            if issued != (entry["migration"] is not None):
                raise ReproError(
                    "%s: reason %r inconsistent with migration %r"
                    % (where, reason, entry["migration"]))
            if issued:
                if entry["window"] < cooldown_until:
                    raise ReproError(
                        "%s migrated at window %d inside cooldown "
                        "(until %d)" % (where, entry["window"],
                                        cooldown_until))
                if entry["migration"].get("outcome") == "committed":
                    cooldown_until = entry["cooldown_until_window"]
            if reason == "migrated" and not entry["ranking"]:
                raise ReproError(
                    "%s migrated without a candidate ranking" % where)
        return True

    def to_payload(self):
        """Plain-data dump (the journal half of BENCH_autotune.json)."""
        return {"schema": JOURNAL_SCHEMA,
                "entries": [dict(e) for e in self.entries]}
