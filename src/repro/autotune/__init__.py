"""Closed-loop isolation autotuning.

FlexOS makes isolation a build-time knob; :mod:`repro.reconfig` made it
a run-time one; this package closes the loop: a policy watches windowed
telemetry (:meth:`~repro.obs.hub.TelemetryHub.evaluator_input`), prices
the harden ladder's layouts with the exploration engine's ``live``
evaluator, and migrates the running instance when the SLO burns or the
gate bill dominates — with hysteresis and cooldown so it never
thrashes, a safety floor so it never undoes fault-driven hardening, and
a decision journal that makes every migration (and every deliberate
non-migration) attributable.

See ``docs/autotuning.md`` for the loop's anatomy and the journal
schema.
"""

from repro.autotune.driver import (
    DEFAULT_SCHEDULE,
    AutotuneRun,
    run_autotune_redis,
)
from repro.autotune.journal import (
    ENTRY_KEYS,
    KNOWN_REASONS,
    MIGRATION_REASONS,
    DecisionJournal,
)
from repro.autotune.loop import AutotuneLoop, signal_digest
from repro.autotune.policy import (
    AutotunePolicy,
    Decision,
    ladder_layouts,
    rung_name,
)

__all__ = [
    "AutotuneLoop",
    "AutotunePolicy",
    "AutotuneRun",
    "Decision",
    "DecisionJournal",
    "DEFAULT_SCHEDULE",
    "ENTRY_KEYS",
    "KNOWN_REASONS",
    "MIGRATION_REASONS",
    "ladder_layouts",
    "rung_name",
    "run_autotune_redis",
    "signal_digest",
]
