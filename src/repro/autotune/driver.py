"""End-to-end closed-loop runs: redis under a shifting load schedule.

:func:`run_autotune_redis` boots a live-migratable two-compartment redis
instance (via :func:`~repro.reconfig.driver.reconfig_config`), offers a
piecewise-Poisson schedule through the open-loop harness, and runs the
:class:`~repro.autotune.loop.AutotuneLoop` as a background thread inside
the same cooperative scheduler — so sampling, ranking and migration all
happen on the virtual clock and the whole run is a deterministic
function of its seed.

Optionally a second background thread injects a burst of contained
allocator faults into the isolated compartment mid-run (the
``fault_burst`` knob), driving the supervisor's HardenPolicy and, through
it, the loop's harden path: the instance climbs the ladder and the
autotune floor rises with it.
"""

from __future__ import annotations

from repro.autotune.loop import AutotuneLoop
from repro.autotune.policy import AutotunePolicy, rung_name
from repro.bench.load import run_load
from repro.errors import ReproError
from repro.faults.campaign import lwip_alloc_probe
from repro.faults.injector import FaultInjector, FaultSpec
from repro.faults.supervisor import make_policy
from repro.hw.clock import XEON_4114_HZ
from repro.kernel.sched import yield_
from repro.obs import SloTarget, TelemetryHub
from repro.reconfig.driver import DEFAULT_ISOLATE, reconfig_config
from repro.reconfig.engine import ReconfigurationEngine
from repro.reconfig.policy import HardenOnFaultPolicy

#: Quiet — spike — quiet: the canonical load-shift scenario.
DEFAULT_SCHEDULE = ((9000.0, 48), (26000.0, 96), (9000.0, 48))


class AutotuneRun:
    """One completed closed-loop run and everything it produced."""

    __slots__ = ("result", "hub", "loop", "engine")

    def __init__(self, result, hub, loop, engine):
        self.result = result
        self.hub = hub
        self.loop = loop
        self.engine = engine

    @property
    def journal(self):
        return self.loop.journal

    @property
    def migrations(self):
        return self.loop.migrations

    def final_layout(self):
        image = self.engine.instance.image
        return rung_name(image.backend_name, image.config.mpk_gate)

    def summary(self):
        """Deterministic plain-data dump (cache statistics excluded)."""
        return {
            "load": self.result.summary(),
            "autotune": {
                "steps": self.loop.steps,
                "migrations": self.loop.migrations,
                "final_layout": self.final_layout(),
                "journal": self.journal.to_payload(),
            },
        }

    def __repr__(self):
        return "AutotuneRun(%d steps, %d migrations, final=%s)" % (
            self.loop.steps, self.loop.migrations, self.final_layout())


def run_autotune_redis(mechanism="intel-mpk", mpk_gate="full",
                       schedule=DEFAULT_SCHEDULE, slo_us=3.0,
                       slo_objective=0.99, seed=1, connections=4,
                       window_cycles=100_000.0, every_windows=4,
                       cooldown_windows=8, burn_threshold=1.0,
                       gate_share_threshold=0.6, min_improvement=0.02,
                       fault_burst=None, harden_after=3, cache=None,
                       isolate=DEFAULT_ISOLATE):
    """Serve a redis load schedule with the autotune loop closed over it.

    Args:
        mechanism / mpk_gate: the rung the instance boots on.
        schedule: piecewise ``(rate_rps, n_requests)`` Poisson phases.
        slo_us: p99 latency SLO in virtual microseconds.
        slo_objective: fraction of requests that must meet it.
        fault_burst: ``(at_request, n_faults)`` — inject that many
            contained allocator OOMs into the isolated compartment once
            that many requests completed, or ``None`` for no faults.
        harden_after: supervisor HardenPolicy trip count.
        cache: an :class:`~repro.explore.cache.EvaluationCache` (or
            directory path) shared across decisions; a warm rerun then
            reproduces every ranking without a single fresh evaluation.
        isolate: libraries in the isolated compartment.

    Returns an :class:`AutotuneRun`.
    """
    threshold_cycles = slo_us * XEON_4114_HZ / 1e6
    hub = TelemetryHub(
        window_cycles=window_cycles,
        slo_targets=(SloTarget("p99", threshold_cycles, slo_objective),),
    )
    holder = {}

    def autotune_factory(ctx):
        instance = ctx["instance"]
        engine = ReconfigurationEngine(instance)
        policy = AutotunePolicy(
            burn_threshold=burn_threshold,
            gate_share_threshold=gate_share_threshold,
            min_improvement=min_improvement, isolate=isolate,
            cache=cache,
        )
        harden = None
        if fault_burst is not None:
            supervisor_policy = make_policy("harden", after=harden_after,
                                            inner="degrade")
            instance.supervisor.set_default_policy(supervisor_policy)
            holder["injector"] = instance.attach_injector(FaultInjector())
            harden = HardenOnFaultPolicy(supervisor_policy)
        loop = AutotuneLoop(hub, engine, policy, harden_policy=harden,
                            every_windows=every_windows,
                            cooldown_windows=cooldown_windows)
        holder["loop"] = loop
        holder["engine"] = engine
        return loop.thread_body(ctx)

    background = [("autotune", autotune_factory)]
    if fault_burst is not None:
        at_request, n_faults = fault_burst

        def burst_factory(ctx):
            instance = ctx["instance"]
            served = ctx["served"]
            comp_index = instance.image.compartment_of(isolate[0]).index

            def body():
                while served() < at_request:
                    yield yield_()
                injector = holder["injector"]
                for _ in range(n_faults):
                    # Arm and probe in the same slice: the probe's own
                    # crossing consumes the one-shot fault, so no live
                    # request can ever absorb it.
                    heap = instance.memmgr.heap_of(comp_index)
                    injector.arm(FaultSpec("alloc-oom", dst=comp_index))
                    try:
                        lwip_alloc_probe(heap)
                    except ReproError:
                        pass
                    finally:
                        injector.disarm()
                        heap.fail_next(0)
                    yield yield_()
                return n_faults

            return body

        background.append(("fault-burst", burst_factory))

    result = run_load(
        "redis", mechanism, mpk_gate=mpk_gate, schedule=schedule,
        seed=seed, connections=connections, cores=None, hub=hub,
        config=reconfig_config(mechanism, mpk_gate, isolate=isolate),
        background=background,
    )
    return AutotuneRun(result, hub, holder["loop"], holder["engine"])
