"""The closed loop: sample telemetry, consult policies, pace migrations.

:class:`AutotuneLoop` is the only component allowed to call
:meth:`~repro.reconfig.engine.ReconfigurationEngine.migrate`; policies
(:class:`~repro.autotune.policy.AutotunePolicy`, :class:`~repro.reconfig
.policy.HardenOnFaultPolicy`) only *propose*.  That split is what makes
the pacing invariants checkable: the loop samples every
``every_windows`` telemetry windows, and after any committed migration
refuses further migrations — from *either* policy — until
``cooldown_windows`` windows have passed, journalling the held-back
decision instead.

Fault pressure outranks performance: when the harden policy proposes, it
is served first, the sampled step journals that instead of the autotune
decision, and a committed harden raises the autotune policy's
admissibility floor so the tuner can never undo the hardening.

The loop runs as an ordinary cooperative thread
(:meth:`AutotuneLoop.thread_body` plugs into ``run_load``'s
``background=`` hook), so every decision happens at a deterministic
virtual-clock point: same seed, same journal, byte for byte.
"""

from __future__ import annotations

from repro.autotune.journal import DecisionJournal
from repro.autotune.policy import rung_name
from repro.errors import ConfigError
from repro.kernel.sched import yield_
from repro.reconfig.harden import ladder_position
from repro.reconfig.policy import PolicyState


def signal_digest(signal):
    """The compact signal snapshot a journal entry embeds."""
    if not signal:
        return {"windows": 0, "requests": 0.0, "gate_share": 0.0,
                "burn": {}}
    windows = signal.get("windows", ())
    decomposition = signal.get("decomposition") or {"shares": {}}
    return {
        "windows": len(windows),
        "requests": sum(w.get("requests", 0.0) for w in windows),
        "gate_share": decomposition["shares"].get("gate_cycles", 0.0),
        "burn": {name: slo["overall_burn"]
                 for name, slo in (signal.get("slo") or {}).items()},
    }


class AutotuneLoop:
    """Drive reconfiguration from a live TelemetryHub."""

    def __init__(self, hub, engine, policy, harden_policy=None,
                 every_windows=4, cooldown_windows=8, journal=None):
        if every_windows < 1:
            raise ConfigError("every_windows must be >= 1")
        if cooldown_windows < 0:
            raise ConfigError("cooldown_windows must be >= 0")
        self.hub = hub
        self.engine = engine
        self.policy = policy
        self.harden_policy = harden_policy
        self.every_windows = int(every_windows)
        self.cooldown_windows = int(cooldown_windows)
        self.journal = journal if journal is not None else DecisionJournal()
        self.steps = 0
        self.migrations = 0
        self.fresh_evaluations = 0
        self.cache_hits = 0
        #: No migration may be issued before this window index.
        self.cooldown_until = 0
        self._last_report = None
        engine.add_report_hook(self._on_report)

    # -- engine feedback ---------------------------------------------------

    def _on_report(self, report):
        self._last_report = {
            "outcome": report.outcome,
            "phase_reached": report.phase_reached,
            "steps_applied": report.steps_applied,
            "blackout_cycles": report.blackout_cycles,
            "source": report.plan.source_mechanism,
            "target": report.plan.target_mechanism,
        }

    def _take_report(self):
        report, self._last_report = self._last_report, None
        return report

    # -- one sampled step --------------------------------------------------

    def _execute(self, window, target):
        """Migrate now; returns the journal-ready outcome dict."""
        self._last_report = None
        self.engine.migrate(target)
        outcome = self._take_report()
        if outcome is None:  # hook never fired; should not happen
            outcome = {"outcome": "unknown"}
        if outcome.get("outcome") == "committed":
            self.migrations += 1
            self.cooldown_until = window + self.cooldown_windows
        return outcome

    def step(self, window):
        """Sample the hub once and act; called from the loop thread."""
        signal = self.hub.evaluator_input()
        state = PolicyState(instance=self.engine.instance,
                            engine=self.engine, signal=signal,
                            window=window)
        digest = signal_digest(signal)
        in_cooldown = window < self.cooldown_until
        entry = None
        if self.harden_policy is not None:
            proposal = self.harden_policy.propose(state)
            if proposal is not None:
                entry = self._step_harden(window, proposal, digest,
                                          in_cooldown)
        if entry is None:
            entry = self._step_autotune(state, window, digest, in_cooldown)
        self.steps += 1
        return entry

    def _step_harden(self, window, proposal, digest, in_cooldown):
        current = self.policy.current_rung(self.engine.instance)
        common = dict(window=window, policy="harden-on-fault",
                      current=current, trigger=proposal.trigger,
                      signal=digest,
                      cooldown_until_window=self.cooldown_until)
        if proposal.target is None:
            return self.journal.record(reason="at-ladder-top", **common)
        if in_cooldown:
            return self.journal.record(reason="cooldown", **common)
        chosen = rung_name(proposal.target.mechanism,
                           proposal.target.mpk_gate)
        outcome = self._execute(window, proposal.target)
        if outcome.get("outcome") == "committed":
            # Hardening is a floor, not a suggestion: the tuner may
            # never propose anything weaker from here on.
            position = ladder_position(proposal.target.mechanism,
                                       proposal.target.mpk_gate)
            if position > self.policy.floor:
                self.policy.floor = position
            common["cooldown_until_window"] = self.cooldown_until
        return self.journal.record(reason="hardened", chosen=chosen,
                                   migration=outcome, **common)

    def _step_autotune(self, state, window, digest, in_cooldown):
        decision = self.policy.decide(state)
        self.fresh_evaluations += decision.fresh_evaluations
        self.cache_hits += decision.cache_hits
        common = dict(window=window, policy=self.policy.name,
                      current=decision.current, trigger=decision.trigger,
                      ranking=decision.ranking, signal=digest,
                      cooldown_until_window=self.cooldown_until)
        if decision.reason != "migrate":
            return self.journal.record(reason=decision.reason, **common)
        if in_cooldown:
            return self.journal.record(reason="cooldown", **common)
        outcome = self._execute(window, decision.target)
        common["cooldown_until_window"] = self.cooldown_until
        return self.journal.record(reason="migrated",
                                   chosen=decision.chosen,
                                   migration=outcome, **common)

    # -- scheduling --------------------------------------------------------

    def thread_body(self, ctx):
        """A ``run_load`` background body sampling every N windows."""
        clock = ctx["clock"]
        served = ctx["served"]
        total = ctx["n_requests"]
        window_cycles = self.hub.timeseries.window_cycles

        def body():
            next_sample = self.every_windows
            while served() < total:
                window = int(clock.cycles // window_cycles)
                if window >= next_sample:
                    self.step(window)
                    next_sample = window + self.every_windows
                yield yield_()
            return self.steps

        return body
