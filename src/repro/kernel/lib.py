"""Micro-library registry and cross-library call routing.

In FlexOS source code, cross-library calls are abstract gates that the
toolchain instantiates at build time.  Our runtime equivalent is the
:func:`entrypoint` decorator: functions marked as a library's public entry
points are the *only* way into that library, and at call time the active
image decides whether the call is a plain function call (same compartment)
or a domain transition through a gate (different compartments).

When no execution context is active (plain unit tests of the substrate)
the decorator is a transparent pass-through, which mirrors the paper's
"same compartment == code identical to before porting, zero overhead".
"""

from __future__ import annotations

import functools

from repro.errors import ConfigError
from repro.hw.cpu import maybe_current_context

#: Global registry of micro-libraries, keyed by name.
LIBRARY_REGISTRY = {}


class MicroLibrary:
    """Descriptor of one Unikraft-style micro-library.

    Attributes:
        name: library name (``lwip``, ``uksched``, ...).
        role: ``core`` (TCB), ``kernel`` or ``user``.
        loc: representative size, used for TCB accounting.
        entry_points: names of functions decorated as entry points.
    """

    def __init__(self, name, role="kernel", loc=0):
        if role not in ("core", "kernel", "user"):
            raise ConfigError("bad library role %r for %s" % (role, name))
        self.name = name
        self.role = role
        self.loc = loc
        self.entry_points = set()

    @property
    def in_tcb(self):
        return self.role == "core"

    def __repr__(self):
        return "MicroLibrary(%s, role=%s, %d entry points)" % (
            self.name, self.role, len(self.entry_points),
        )


def register_library(name, role="kernel", loc=0):
    """Register (or fetch) the micro-library called ``name``."""
    lib = LIBRARY_REGISTRY.get(name)
    if lib is None:
        lib = MicroLibrary(name, role=role, loc=loc)
        LIBRARY_REGISTRY[name] = lib
    return lib


def get_library(name):
    if name not in LIBRARY_REGISTRY:
        raise ConfigError("unknown micro-library %r" % name)
    return LIBRARY_REGISTRY[name]


# The libraries the prototype ships (paper Section 4), with representative
# line counts used by the TCB accounting in :mod:`repro.core.tcb`.
register_library("ukboot", role="core", loc=400)
register_library("ukalloc", role="core", loc=500)
register_library("uksched", role="core", loc=450)
register_library("ukintr", role="core", loc=250)
register_library("uktime", role="kernel", loc=300)
register_library("lwip", role="kernel", loc=4200)
register_library("vfscore", role="kernel", loc=1500)
register_library("ramfs", role="kernel", loc=700)
register_library("newlib", role="user", loc=5200)


def entrypoint(library):
    """Mark a function as a public entry point of ``library``.

    Calls to the function are routed through the active image's gates when
    an execution context with a router is installed; otherwise the function
    is called directly.  The decorated function keeps its signature.
    """
    lib = register_library(library)

    def decorate(func):
        lib.entry_points.add(func.__name__)
        func.__flexos_library__ = library
        func.__flexos_entry__ = True

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            ctx = maybe_current_context()
            if ctx is None:
                return func(*args, **kwargs)
            if ctx.router is not None:
                return ctx.router.route(library, func, args, kwargs)
            with ctx.in_library(library):
                return func(*args, **kwargs)

        wrapper.__flexos_library__ = library
        wrapper.__flexos_entry__ = True
        wrapper.__wrapped_impl__ = func
        return wrapper

    return decorate


def work(cycles, library=None):
    """Charge modelled computation from substrate code.

    Looks up the active context; a no-op when code runs outside any
    simulation (so the substrate stays usable as plain Python).
    """
    ctx = maybe_current_context()
    if ctx is not None:
        ctx.charge_work(cycles, library=library)
