"""First-level interrupt handling (``ukintr``).

Part of the TCB: the first-level handler's context-switch primitives can
read and write any thread's saved register state, so no isolation
mechanism can exclude it.  In the cooperative simulation, interrupts are
modelled as callbacks fired between thread time slices (timer ticks and
network-device notifications), each charged the hardware IRQ entry cost.
"""

from __future__ import annotations

from repro.errors import SchedulerError
from repro.kernel.lib import entrypoint, work
from repro.obs import tracer as obs


class InterruptController:
    """Registers and fires interrupt lines."""

    #: Conventional line numbers.
    IRQ_TIMER = 0
    IRQ_NET = 1

    def __init__(self, clock, costs):
        self.clock = clock
        self.costs = costs
        self._handlers = {}
        self.delivered = 0

    def register(self, line, handler):
        """Attach ``handler`` to an interrupt line."""
        self._handlers.setdefault(line, []).append(handler)

    @entrypoint("ukintr")
    def raise_irq(self, line, payload=None):
        """Deliver one interrupt: first-level entry cost + all handlers."""
        handlers = self._handlers.get(line)
        if not handlers:
            raise SchedulerError("unhandled interrupt line %d" % line)
        work(self.costs.irq_entry)
        self.delivered += 1
        tracer = obs.ACTIVE
        if tracer.enabled:
            tracer.irq(line, len(handlers))
        for handler in handlers:
            handler(payload)
