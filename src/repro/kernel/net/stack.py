"""The lwIP-style stack facade: demux, IP layer, device pump.

All public operations are ``lwip`` entry points, so a compartment boundary
around the network stack turns every socket-buffer poll, send, and device
pump into a gated cross-call.
"""

from __future__ import annotations

from collections import deque

from repro.errors import NetworkError
from repro.kernel.lib import entrypoint, work
from repro.kernel.net.headers import (
    ARP_REPLY,
    ARP_REQUEST,
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    ICMP_ECHO_REPLY,
    ICMP_ECHO_REQUEST,
    MAC_BROADCAST,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    ArpHeader,
    EthernetHeader,
    IcmpHeader,
    Ipv4Header,
    TcpHeader,
    UdpHeader,
)
from repro.kernel.net.tcp import TcpConnection, TcpState


class NetworkStack:
    """One host's network stack bound to one device."""

    def __init__(self, device, ip, costs, clock):
        self.device = device
        self.ip = ip
        self.costs = costs
        self.clock = clock
        self._conns = {}       # 4-tuple -> TcpConnection
        self._listeners = {}   # port -> TcpConnection in LISTEN
        self._udp_queues = {}  # port -> deque of (src_ip, src_port, payload)
        self._next_ident = 1
        self._next_port = 49152
        #: src IP of the frame currently being demuxed (handshake helper).
        self.last_src_ip = None
        self.frames_in = 0
        self.frames_out = 0
        #: ARP cache: ip -> mac; packets parked while resolution runs.
        self.arp_table = {}
        self._arp_pending = {}  # ip -> [(proto, body), ...]
        #: ICMP echo replies received: [(src_ip, ident, seq)].
        self.ping_replies = []
        self._ping_ident = 0x4242

    def now_ns(self):
        return self.clock.ns

    # -- connection registry ----------------------------------------------------
    def register_connection(self, conn):
        self._conns[conn.four_tuple()] = conn

    def ephemeral_port(self):
        port = self._next_port
        self._next_port += 1
        return port

    # -- outbound path -----------------------------------------------------------
    def tcp_output(self, conn, header, payload):
        """Wrap a TCP segment in IP + Ethernet and transmit it."""
        work(self.costs.tcp_segment)
        segment = header.pack() + payload
        self._ip_output(conn.remote_ip, PROTO_TCP, segment)

    @entrypoint("lwip")
    def udp_send(self, src_port, dst_ip, dst_port, payload):
        work(self.costs.tcp_segment / 2.0)
        header = UdpHeader(src_port, dst_port, len(payload) + 8)
        self._ip_output(dst_ip, PROTO_UDP, header.pack() + payload)

    def _ip_output(self, dst_ip, proto, body):
        work(self.costs.ip_route)
        dst_mac = self.arp_table.get(dst_ip)
        if dst_mac is None:
            # Park the packet and ask the link who owns dst_ip.
            self._arp_pending.setdefault(dst_ip, []).append((proto, body))
            self._send_arp(ARP_REQUEST, MAC_BROADCAST, dst_ip)
            return
        ip_header = Ipv4Header(self.ip, dst_ip, proto, 20 + len(body),
                               ident=self._next_ident)
        self._next_ident += 1
        eth = EthernetHeader(dst_mac, self.device.mac)
        frame = eth.pack() + ip_header.pack() + body
        self.frames_out += 1
        self.device.transmit(frame)

    # -- ARP -----------------------------------------------------------------
    def _send_arp(self, oper, target_mac, target_ip):
        arp = ArpHeader(oper, self.device.mac, self.ip, target_mac,
                        target_ip)
        eth = EthernetHeader(
            MAC_BROADCAST if oper == ARP_REQUEST else target_mac,
            self.device.mac, ethertype=ETHERTYPE_ARP,
        )
        self.frames_out += 1
        self.device.transmit(eth.pack() + arp.pack())

    def _arp_input(self, packet):
        arp = ArpHeader.unpack(packet)
        # Gratuitous learning: remember the sender either way.
        self.arp_table[arp.sender_ip] = arp.sender_mac
        if arp.oper == ARP_REQUEST and arp.target_ip == self.ip:
            self._send_arp(ARP_REPLY, arp.sender_mac, arp.sender_ip)
        # Flush packets parked on this resolution.
        parked = self._arp_pending.pop(arp.sender_ip, [])
        for proto, body in parked:
            self._ip_output(arp.sender_ip, proto, body)

    # -- ICMP ---------------------------------------------------------------
    @entrypoint("lwip")
    def ping(self, dst_ip, seq=1, payload=b"flexos-ping"):
        """Send one ICMP echo request; replies land in ping_replies."""
        header = IcmpHeader(ICMP_ECHO_REQUEST, self._ping_ident, seq)
        self._ip_output(dst_ip, PROTO_ICMP, header.pack(payload))
        return self._ping_ident

    def _icmp_input(self, ip_header, body):
        work(self.costs.tcp_segment / 3.0)
        icmp, payload = IcmpHeader.unpack(body)
        if icmp.icmp_type == ICMP_ECHO_REQUEST:
            reply = IcmpHeader(ICMP_ECHO_REPLY, icmp.ident, icmp.seq)
            self._ip_output(ip_header.src, PROTO_ICMP, reply.pack(payload))
        elif icmp.icmp_type == ICMP_ECHO_REPLY:
            self.ping_replies.append((ip_header.src, icmp.ident, icmp.seq))

    # -- inbound path ---------------------------------------------------------
    @entrypoint("lwip")
    def pump(self, budget=64):
        """Process up to ``budget`` received frames; returns count."""
        processed = 0
        while processed < budget:
            frame = self.device.poll()
            if frame is None:
                break
            self._input(frame)
            processed += 1
        return processed

    def _input(self, frame):
        self.frames_in += 1
        eth, packet = EthernetHeader.unpack(frame)
        if eth.dst not in (self.device.mac, MAC_BROADCAST):
            return  # not addressed to us
        if eth.ethertype == ETHERTYPE_ARP:
            self._arp_input(packet)
            return
        ip_header, body = Ipv4Header.unpack(packet)
        if ip_header.dst != self.ip:
            return  # promiscuous frames are dropped
        work(self.costs.ip_route)
        self.last_src_ip = ip_header.src
        # Opportunistic ARP learning from traffic we accept.
        self.arp_table.setdefault(ip_header.src, eth.src)
        if ip_header.proto == PROTO_TCP:
            self._tcp_input(ip_header, body)
        elif ip_header.proto == PROTO_UDP:
            self._udp_input(ip_header, body)
        elif ip_header.proto == PROTO_ICMP:
            self._icmp_input(ip_header, body)
        else:
            raise NetworkError("unknown IP proto %d" % ip_header.proto)

    def _tcp_input(self, ip_header, body):
        work(self.costs.tcp_segment)
        header, payload = TcpHeader.unpack(body)
        key = (self.ip, header.dst_port, ip_header.src, header.src_port)
        conn = self._conns.get(key)
        if conn is None:
            conn = self._listeners.get(header.dst_port)
        if conn is None:
            return  # no socket: real stacks send RST; we drop.
        conn.on_segment(header, payload)

    def _udp_input(self, ip_header, body):
        work(self.costs.tcp_segment / 2.0)
        header, payload = UdpHeader.unpack(body)
        queue = self._udp_queues.setdefault(header.dst_port, deque())
        queue.append((ip_header.src, header.src_port, payload))

    # -- TCP control entry points ----------------------------------------------
    @entrypoint("lwip")
    def tcp_listen(self, port):
        """Create a listening connection on ``port``."""
        if port in self._listeners:
            raise NetworkError("port %d already listening" % port)
        conn = TcpConnection(self, self.ip, port)
        conn.open_passive()
        self._listeners[port] = conn
        return conn

    @entrypoint("lwip")
    def tcp_connect(self, dst_ip, dst_port):
        """Active open; returns the connection (handshake in flight)."""
        conn = TcpConnection(self, self.ip, self.ephemeral_port())
        conn.remote_ip = dst_ip
        conn.remote_port = dst_port
        self.register_connection(conn)
        conn.open_active(dst_ip, dst_port)
        return conn

    @entrypoint("lwip")
    def tcp_accept(self, listener):
        """Pop one established embryonic connection, or None."""
        while listener.accept_backlog:
            conn = listener.accept_backlog[0]
            if conn.state is TcpState.ESTABLISHED:
                listener.accept_backlog.popleft()
                return conn
            break
        return None

    @entrypoint("lwip")
    def tcp_send(self, conn, payload):
        return conn.send(payload)

    @entrypoint("lwip")
    def tcp_sendv(self, conn, chunks):
        """Gather-send a chunk list in one stack crossing (``writev``)."""
        return conn.send_segments(chunks)

    @entrypoint("lwip")
    def tcp_recv(self, conn, max_bytes):
        """Non-blocking read from the connection's receive buffer."""
        work(self.costs.function_call)
        return conn.read(max_bytes)

    @entrypoint("lwip")
    def tcp_readable(self, conn):
        return conn.readable_bytes

    @entrypoint("lwip")
    def tcp_close(self, conn):
        conn.close()

    @entrypoint("lwip")
    def udp_recv(self, port):
        queue = self._udp_queues.get(port)
        if not queue:
            return None
        return queue.popleft()
