"""Virtual network devices.

A :class:`NetDevice` is a virtio-net-like queue pair.  Two devices can be
joined by :class:`LinkedDevices` into a lossless full-duplex link (the
paper's client and server machines sit on the same switch), optionally
with a configurable per-frame drop pattern for loss/retransmission tests.
"""

from __future__ import annotations

from collections import deque

from repro.kernel.lib import entrypoint, work

#: Standard Ethernet MTU.
MTU = 1500


class NetDevice:
    """One NIC: a transmit hook and a receive queue."""

    def __init__(self, name, mac, costs):
        self.name = name
        self.mac = mac
        self.costs = costs
        self.rx_queue = deque()
        self.peer = None
        self.tx_frames = 0
        self.rx_frames = 0
        self.dropped = 0
        self.duplicated = 0
        #: Optional callable(frame_index) -> bool; True means drop.
        self.drop_fn = None
        #: Optional callable(frame_index) -> bool; True delivers the frame
        #: twice (fault injection: a retransmitting switch or a buggy
        #: driver ring; TCP must de-duplicate by sequence number).
        self.dup_fn = None

    @entrypoint("lwip")
    def transmit(self, frame):
        """Send one Ethernet frame to the link."""
        work(self.costs.driver_xmit)
        work(len(frame) * self.costs.memcpy_per_byte)
        self.tx_frames += 1
        if self.peer is None:
            self.dropped += 1
            return
        index = self.peer.rx_frames + self.peer.dropped
        if self.peer.drop_fn is not None and self.peer.drop_fn(index):
            self.peer.dropped += 1
            return
        copies = 1
        if self.peer.dup_fn is not None and self.peer.dup_fn(index):
            copies = 2
            self.peer.duplicated += 1
        for _ in range(copies):
            self.peer.rx_queue.append(bytes(frame))
            self.peer.rx_frames += 1

    def poll(self):
        """Pop the next received frame, or None."""
        if not self.rx_queue:
            return None
        return self.rx_queue.popleft()

    @property
    def has_rx(self):
        return bool(self.rx_queue)

    def __repr__(self):
        return "NetDevice(%s tx=%d rx=%d)" % (
            self.name, self.tx_frames, self.rx_frames,
        )


class LinkedDevices:
    """A full-duplex point-to-point link between two NICs."""

    def __init__(self, costs, name_a="dev-a", name_b="dev-b"):
        self.a = NetDevice(name_a, "02:00:00:00:00:0a", costs)
        self.b = NetDevice(name_b, "02:00:00:00:00:0b", costs)
        self.a.peer = self.b
        self.b.peer = self.a
