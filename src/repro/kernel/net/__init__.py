"""TCP/IP stack (``lwip``).

A functional, byte-level network stack standing in for lwIP: Ethernet and
IPv4 headers are really packed and parsed, TCP runs a real state machine
(handshake, cumulative ACKs, segmentation at the MSS, FIN teardown), and
sockets expose the BSD API the applications use.

Communication-pattern fidelity matters for the paper's results: the stack
never calls the scheduler (the paper notes "LwIP does not directly
communicate with the scheduler, hence the cut is not on a hot path" — the
source of the 'isolation for free' effect).  Blocking socket calls are
implemented in the libc layer as poll-and-yield loops instead.
"""

from repro.kernel.net.device import LinkedDevices, NetDevice
from repro.kernel.net.socket import Socket
from repro.kernel.net.stack import NetworkStack

__all__ = ["LinkedDevices", "NetDevice", "NetworkStack", "Socket"]
