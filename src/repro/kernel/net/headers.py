"""Ethernet, IPv4, TCP and UDP header packing/parsing.

Real wire formats (struct-packed, checksummed) so that header corruption,
truncation, and checksum failures are detectable in tests, and payload
sizes seen by the cost model equal what real frames would carry.
"""

from __future__ import annotations

import struct

from repro.errors import NetworkError

ETH_HEADER_LEN = 14
IP_HEADER_LEN = 20
TCP_HEADER_LEN = 20
UDP_HEADER_LEN = 8

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

#: Ethernet broadcast address.
MAC_BROADCAST = "ff:ff:ff:ff:ff:ff"

# TCP flags
FIN = 0x01
SYN = 0x02
RST = 0x04
PSH = 0x08
ACK = 0x10


def mac_bytes(mac):
    """Convert ``aa:bb:cc:dd:ee:ff`` to 6 raw bytes."""
    parts = mac.split(":")
    if len(parts) != 6:
        raise NetworkError("bad MAC address %r" % mac)
    return bytes(int(p, 16) for p in parts)


def mac_str(raw):
    return ":".join("%02x" % b for b in raw)


def ip_bytes(ip):
    parts = ip.split(".")
    if len(parts) != 4:
        raise NetworkError("bad IPv4 address %r" % ip)
    return bytes(int(p) for p in parts)


def ip_str(raw):
    return ".".join(str(b) for b in raw)


def checksum16(data):
    """RFC 1071 ones-complement sum over 16-bit words."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


class EthernetHeader:
    """dst(6) src(6) ethertype(2)."""

    def __init__(self, dst, src, ethertype=ETHERTYPE_IPV4):
        self.dst = dst
        self.src = src
        self.ethertype = ethertype

    def pack(self):
        return mac_bytes(self.dst) + mac_bytes(self.src) + struct.pack(
            "!H", self.ethertype
        )

    @classmethod
    def unpack(cls, frame):
        if len(frame) < ETH_HEADER_LEN:
            raise NetworkError("runt ethernet frame (%d bytes)" % len(frame))
        dst = mac_str(frame[0:6])
        src = mac_str(frame[6:12])
        (ethertype,) = struct.unpack("!H", frame[12:14])
        return cls(dst, src, ethertype), frame[ETH_HEADER_LEN:]


class Ipv4Header:
    """Standard 20-byte IPv4 header (no options)."""

    def __init__(self, src, dst, proto, total_len, ident=0, ttl=64):
        self.src = src
        self.dst = dst
        self.proto = proto
        self.total_len = total_len
        self.ident = ident
        self.ttl = ttl

    def pack(self):
        header = struct.pack(
            "!BBHHHBBH4s4s",
            0x45, 0, self.total_len, self.ident, 0,
            self.ttl, self.proto, 0,
            ip_bytes(self.src), ip_bytes(self.dst),
        )
        csum = checksum16(header)
        return header[:10] + struct.pack("!H", csum) + header[12:]

    @classmethod
    def unpack(cls, packet):
        if len(packet) < IP_HEADER_LEN:
            raise NetworkError("truncated IPv4 header")
        (vihl, _tos, total_len, ident, _frag, ttl, proto, _csum,
         src, dst) = struct.unpack("!BBHHHBBH4s4s", packet[:IP_HEADER_LEN])
        if vihl >> 4 != 4:
            raise NetworkError("not an IPv4 packet (version %d)" % (vihl >> 4))
        if checksum16(packet[:IP_HEADER_LEN]) != 0:
            raise NetworkError("IPv4 header checksum mismatch")
        header = cls(ip_str(src), ip_str(dst), proto, total_len,
                     ident=ident, ttl=ttl)
        return header, packet[IP_HEADER_LEN:total_len]


class TcpHeader:
    """Standard 20-byte TCP header (no options)."""

    def __init__(self, src_port, dst_port, seq, ack, flags, window=65535):
        self.src_port = src_port
        self.dst_port = dst_port
        self.seq = seq
        self.ack = ack
        self.flags = flags
        self.window = window

    def pack(self):
        return struct.pack(
            "!HHIIBBHHH",
            self.src_port, self.dst_port,
            self.seq & 0xFFFFFFFF, self.ack & 0xFFFFFFFF,
            5 << 4, self.flags, self.window, 0, 0,
        )

    @classmethod
    def unpack(cls, segment):
        if len(segment) < TCP_HEADER_LEN:
            raise NetworkError("truncated TCP header")
        (src_port, dst_port, seq, ack, offset, flags, window,
         _csum, _urg) = struct.unpack("!HHIIBBHHH", segment[:TCP_HEADER_LEN])
        data_off = (offset >> 4) * 4
        header = cls(src_port, dst_port, seq, ack, flags, window=window)
        return header, segment[data_off:]

    def flag_names(self):
        names = []
        for bit, name in ((SYN, "SYN"), (ACK, "ACK"), (FIN, "FIN"),
                          (RST, "RST"), (PSH, "PSH")):
            if self.flags & bit:
                names.append(name)
        return "|".join(names) or "none"


ARP_REQUEST = 1
ARP_REPLY = 2


class ArpHeader:
    """RFC 826 ARP for Ethernet/IPv4 (28 bytes)."""

    def __init__(self, oper, sender_mac, sender_ip, target_mac, target_ip):
        self.oper = oper
        self.sender_mac = sender_mac
        self.sender_ip = sender_ip
        self.target_mac = target_mac
        self.target_ip = target_ip

    def pack(self):
        return (
            struct.pack("!HHBBH", 1, ETHERTYPE_IPV4, 6, 4, self.oper)
            + mac_bytes(self.sender_mac) + ip_bytes(self.sender_ip)
            + mac_bytes(self.target_mac) + ip_bytes(self.target_ip)
        )

    @classmethod
    def unpack(cls, packet):
        if len(packet) < 28:
            raise NetworkError("truncated ARP packet")
        htype, ptype, hlen, plen, oper = struct.unpack("!HHBBH", packet[:8])
        if htype != 1 or ptype != ETHERTYPE_IPV4:
            raise NetworkError("unsupported ARP hardware/protocol type")
        return cls(
            oper,
            mac_str(packet[8:14]), ip_str(packet[14:18]),
            mac_str(packet[18:24]), ip_str(packet[24:28]),
        )


ICMP_ECHO_REQUEST = 8
ICMP_ECHO_REPLY = 0


class IcmpHeader:
    """ICMP echo request/reply (8-byte header)."""

    def __init__(self, icmp_type, ident, seq):
        self.icmp_type = icmp_type
        self.ident = ident
        self.seq = seq

    def pack(self, payload=b""):
        header = struct.pack("!BBHHH", self.icmp_type, 0, 0,
                             self.ident, self.seq)
        csum = checksum16(header + payload)
        return header[:2] + struct.pack("!H", csum) + header[4:] + payload

    @classmethod
    def unpack(cls, packet):
        if len(packet) < 8:
            raise NetworkError("truncated ICMP packet")
        if checksum16(packet) != 0:
            raise NetworkError("ICMP checksum mismatch")
        icmp_type, _code, _csum, ident, seq = struct.unpack(
            "!BBHHH", packet[:8],
        )
        return cls(icmp_type, ident, seq), packet[8:]


class UdpHeader:
    """8-byte UDP header."""

    def __init__(self, src_port, dst_port, length):
        self.src_port = src_port
        self.dst_port = dst_port
        self.length = length

    def pack(self):
        return struct.pack("!HHHH", self.src_port, self.dst_port,
                           self.length, 0)

    @classmethod
    def unpack(cls, datagram):
        if len(datagram) < UDP_HEADER_LEN:
            raise NetworkError("truncated UDP header")
        src_port, dst_port, length, _csum = struct.unpack(
            "!HHHH", datagram[:UDP_HEADER_LEN]
        )
        return cls(src_port, dst_port, length), datagram[UDP_HEADER_LEN:]
