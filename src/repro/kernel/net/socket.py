"""Non-blocking BSD-style socket objects over the stack.

These are the stack-side socket structures; POSIX *blocking* semantics
(recv that waits for data) live in the libc layer as poll-and-yield
generators, matching the paper's communication pattern where the network
stack itself never calls into the scheduler.
"""

from __future__ import annotations

from repro.errors import NetworkError
from repro.hw.cpu import current_context


class Socket:
    """A TCP socket bound to one :class:`NetworkStack`."""

    def __init__(self, stack):
        self.stack = stack
        self.conn = None
        self.listener = None
        self.bound_port = None

    # -- server side ------------------------------------------------------------
    def bind(self, port):
        if self.bound_port is not None:
            raise NetworkError("socket already bound")
        self.bound_port = port
        return self

    def listen(self):
        if self.bound_port is None:
            raise NetworkError("listen before bind")
        self.listener = self.stack.tcp_listen(self.bound_port)
        return self

    def try_accept(self):
        """Non-blocking accept; returns a connected Socket or None."""
        if self.listener is None:
            raise NetworkError("accept on a non-listening socket")
        self.stack.pump()
        conn = self.stack.tcp_accept(self.listener)
        if conn is None:
            return None
        accepted = Socket(self.stack)
        accepted.conn = conn
        return accepted

    # -- client side ---------------------------------------------------------
    def connect_start(self, ip, port):
        """Begin an active open (SYN sent); completes via pump()."""
        self.conn = self.stack.tcp_connect(ip, port)
        return self

    @property
    def connected(self):
        from repro.kernel.net.tcp import TcpState

        return self.conn is not None and self.conn.state is TcpState.ESTABLISHED

    # -- data path --------------------------------------------------------------
    def send(self, payload):
        if self.conn is None:
            raise NetworkError("send on an unconnected socket")
        return self.stack.tcp_send(self.conn, payload)

    def sendv(self, buf, spans):
        """Gather-send from a :class:`~repro.hw.memory.ByteBuffer`.

        ``spans`` is ``[(start, length), ...]`` into ``buf``; the spans
        are fetched with a single batched protection check and handed to
        the stack as a scatter list (the modelled ``writev`` on a
        socket) — TCP segments across the span boundaries directly, so
        the bytes are never joined into an intermediate contiguous
        payload.  Returns bytes queued.
        """
        if self.conn is None:
            raise NetworkError("send on an unconnected socket")
        chunks = buf.read_vec(current_context(), spans)
        return self.stack.tcp_sendv(self.conn, chunks)

    def try_recv(self, max_bytes):
        """Non-blocking recv: pumps the device, returns b'' when empty."""
        if self.conn is None:
            raise NetworkError("recv on an unconnected socket")
        self.stack.pump()
        return self.stack.tcp_recv(self.conn, max_bytes)

    def recv_into(self, buf, start, max_bytes):
        """Non-blocking recv straight into a buffer span.

        One protection-checked copy instead of recv-then-write; returns
        bytes landed (0 when the receive queue is empty).
        """
        data = self.try_recv(max_bytes)
        buf.write_bytes(current_context(), data, start)
        return len(data)

    @property
    def readable(self):
        if self.conn is None:
            return 0
        return self.stack.tcp_readable(self.conn)

    @property
    def peer_closed(self):
        return self.conn is not None and self.conn.fin_received

    def close(self):
        if self.conn is not None:
            self.stack.tcp_close(self.conn)
