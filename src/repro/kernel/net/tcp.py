"""TCP: connection state machine with real sequence-number arithmetic.

Implements the subset of RFC 793 the workloads exercise, for real:

* three-way handshake (active and passive open);
* byte-stream data transfer with segmentation at the MSS and cumulative
  acknowledgements;
* in-order reassembly with out-of-order segment buffering;
* retransmission of unacknowledged data on timeout;
* FIN/ACK teardown.

Congestion control is omitted (the paper's testbed link never congests;
the figures are gate-latency bound), which is documented in DESIGN.md.
"""

from __future__ import annotations

import enum
from collections import deque

from repro.errors import NetworkError
from repro.kernel.net.headers import ACK, FIN, PSH, SYN, TcpHeader
from repro.obs import tracer as obs

#: Maximum segment size for a standard 1500-byte MTU.
MSS = 1460

#: Retransmission timeout, in virtual nanoseconds.
RTO_NS = 200_000_000

#: Maximum receive window we advertise (bytes of buffer space).
RECV_WINDOW_MAX = 65535


class TcpState(enum.Enum):
    CLOSED = "closed"
    LISTEN = "listen"
    SYN_SENT = "syn-sent"
    SYN_RCVD = "syn-rcvd"
    ESTABLISHED = "established"
    FIN_WAIT_1 = "fin-wait-1"
    FIN_WAIT_2 = "fin-wait-2"
    CLOSE_WAIT = "close-wait"
    LAST_ACK = "last-ack"
    TIME_WAIT = "time-wait"


class TcpConnection:
    """One TCP endpoint (identified by the local/remote 4-tuple)."""

    def __init__(self, stack, local_ip, local_port, remote_ip=None,
                 remote_port=None, isn=1000):
        self.stack = stack
        self.local_ip = local_ip
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.state = TcpState.CLOSED

        self.snd_una = isn          # oldest unacknowledged byte
        self.snd_nxt = isn          # next byte to send
        self.rcv_nxt = 0            # next byte expected

        self.recv_buffer = bytearray()
        self._reorder = {}          # seq -> payload, out-of-order stash
        self._inflight = []         # [(seq, payload, sent_at_ns)]
        self.accept_backlog = deque()  # completed embryonic connections
        self.segments_in = 0
        self.segments_out = 0
        self.retransmits = 0
        self.fin_received = False
        #: Peer's advertised receive window (flow control).
        self.snd_wnd = RECV_WINDOW_MAX
        #: Bytes waiting because the peer's window was full.
        self._send_backlog = deque()
        self._advertised_zero = False

    # -- sending ------------------------------------------------------------------
    def recv_window(self):
        """The window we advertise: free space in the receive buffer."""
        return max(0, RECV_WINDOW_MAX - len(self.recv_buffer))

    def _emit(self, flags, payload=b"", seq=None):
        window = self.recv_window()
        self._advertised_zero = window < MSS  # effectively closed
        header = TcpHeader(
            self.local_port, self.remote_port,
            self.snd_nxt if seq is None else seq,
            self.rcv_nxt, flags, window=window,
        )
        self.segments_out += 1
        tracer = obs.ACTIVE
        if tracer.enabled:
            tracer.tcp_segment("tx", flags, len(payload),
                               port=self.local_port)
        self.stack.tcp_output(self, header, payload)

    def open_active(self, remote_ip, remote_port):
        """Client side: send SYN."""
        if self.state is not TcpState.CLOSED:
            raise NetworkError("connect on non-closed connection")
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.state = TcpState.SYN_SENT
        self._emit(SYN)
        self.snd_nxt += 1  # SYN occupies one sequence number

    def open_passive(self):
        """Server side: enter LISTEN."""
        if self.state is not TcpState.CLOSED:
            raise NetworkError("listen on non-closed connection")
        self.state = TcpState.LISTEN

    def send(self, payload):
        """Queue application bytes; segments at the MSS.

        Respects the peer's advertised window: bytes beyond it wait in a
        send backlog that drains as acknowledgements open the window.
        """
        return self.send_segments((payload,))

    def send_segments(self, chunks):
        """Gather-send ``chunks`` as one byte stream (the ``writev``
        half of the socket datapath).

        Segments at the MSS *across* chunk boundaries without first
        concatenating the chunks into one contiguous payload — the
        scatter list coming out of :meth:`ByteBuffer.read_vec
        <repro.hw.memory.ByteBuffer.read_vec>` feeds straight into the
        segmenter, so a vectored send copies each byte once (into its
        segment), not twice (join, then segment).
        """
        if self.state not in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT):
            raise NetworkError(
                "send in state %s" % self.state.value
            )
        total = 0
        pieces = []       # partial segment under construction
        filled = 0        # bytes in ``pieces``
        for chunk in chunks:
            view = memoryview(chunk)
            total += len(view)
            while len(view) >= MSS - filled:
                take = MSS - filled
                pieces.append(bytes(view[:take]))
                view = view[take:]
                self._send_backlog.append(
                    pieces[0] if len(pieces) == 1 else b"".join(pieces))
                pieces = []
                filled = 0
            if len(view):
                pieces.append(bytes(view))
                filled += len(view)
        if pieces:
            self._send_backlog.append(
                pieces[0] if len(pieces) == 1 else b"".join(pieces))
        self._flush_backlog()
        return total

    def _bytes_in_flight(self):
        return self.snd_nxt - self.snd_una

    def _flush_backlog(self):
        """Transmit backlog chunks that fit the peer's window."""
        now = self.stack.now_ns()
        while self._send_backlog:
            chunk = self._send_backlog[0]
            if self._bytes_in_flight() + len(chunk) > self.snd_wnd:
                break
            self._send_backlog.popleft()
            self._inflight.append((self.snd_nxt, chunk, now))
            self._emit(PSH | ACK, chunk)
            self.snd_nxt += len(chunk)

    @property
    def backlog_bytes(self):
        return sum(len(chunk) for chunk in self._send_backlog)

    def close(self):
        """Initiate teardown (FIN)."""
        if self.state is TcpState.ESTABLISHED:
            self.state = TcpState.FIN_WAIT_1
        elif self.state is TcpState.CLOSE_WAIT:
            self.state = TcpState.LAST_ACK
        elif self.state in (TcpState.CLOSED, TcpState.LISTEN):
            self.state = TcpState.CLOSED
            return
        else:
            return
        self._emit(FIN | ACK)
        self.snd_nxt += 1

    def poll_retransmit(self):
        """Retransmit timed-out in-flight segments."""
        now = self.stack.now_ns()
        refreshed = []
        for seq, chunk, sent_at in self._inflight:
            if now - sent_at >= RTO_NS:
                self.retransmits += 1
                self._emit(PSH | ACK, chunk, seq=seq)
                refreshed.append((seq, chunk, now))
            else:
                refreshed.append((seq, chunk, sent_at))
        self._inflight = refreshed

    # -- receiving --------------------------------------------------------------
    def on_segment(self, header, payload):
        """The stack's demux delivers one parsed segment here."""
        self.segments_in += 1
        tracer = obs.ACTIVE
        if tracer.enabled:
            tracer.tcp_segment("rx", header.flags, len(payload),
                               port=self.local_port)
        handler = {
            TcpState.LISTEN: self._seg_listen,
            TcpState.SYN_SENT: self._seg_syn_sent,
            TcpState.SYN_RCVD: self._seg_syn_rcvd,
            TcpState.ESTABLISHED: self._seg_established,
            TcpState.FIN_WAIT_1: self._seg_fin_wait_1,
            TcpState.FIN_WAIT_2: self._seg_fin_wait_2,
            TcpState.CLOSE_WAIT: self._seg_close_wait,
            TcpState.LAST_ACK: self._seg_last_ack,
            TcpState.TIME_WAIT: self._seg_ignore,
            TcpState.CLOSED: self._seg_ignore,
        }[self.state]
        handler(header, payload)

    def _seg_ignore(self, header, payload):
        pass

    def _seg_listen(self, header, payload):
        if not header.flags & SYN:
            return
        # Spawn an embryonic connection for this peer.
        conn = TcpConnection(
            self.stack, self.local_ip, self.local_port,
            remote_ip=self.stack.last_src_ip, remote_port=header.src_port,
            isn=4000,
        )
        conn.rcv_nxt = header.seq + 1
        conn.state = TcpState.SYN_RCVD
        conn._emit(SYN | ACK)
        conn.snd_nxt += 1
        self.stack.register_connection(conn)
        self.accept_backlog.append(conn)

    def _seg_syn_sent(self, header, payload):
        if header.flags & SYN and header.flags & ACK:
            if header.ack != self.snd_nxt:
                return  # stale ACK
            self.rcv_nxt = header.seq + 1
            self.snd_una = header.ack
            self.state = TcpState.ESTABLISHED
            self._emit(ACK)

    def _seg_syn_rcvd(self, header, payload):
        if header.flags & ACK and header.ack == self.snd_nxt:
            self.snd_una = header.ack
            self.state = TcpState.ESTABLISHED
            if payload:
                self._accept_data(header, payload)

    def _take_ack(self, header):
        if header.flags & ACK:
            self.snd_wnd = header.window
            if header.ack > self.snd_una:
                self.snd_una = header.ack
                self._inflight = [
                    (seq, chunk, at) for seq, chunk, at in self._inflight
                    if seq + len(chunk) > self.snd_una
                ]
            # The window may have opened: drain what now fits.
            self._flush_backlog()

    def _accept_data(self, header, payload):
        if payload:
            if header.seq == self.rcv_nxt:
                self.recv_buffer.extend(payload)
                self.rcv_nxt += len(payload)
                # Drain any contiguous out-of-order stash.
                while self.rcv_nxt in self._reorder:
                    chunk = self._reorder.pop(self.rcv_nxt)
                    self.recv_buffer.extend(chunk)
                    self.rcv_nxt += len(chunk)
                self._emit(ACK)
            elif header.seq > self.rcv_nxt:
                self._reorder[header.seq] = payload
                self._emit(ACK)  # duplicate ACK for the gap
            else:
                self._emit(ACK)  # retransmission of old data

    def _seg_established(self, header, payload):
        self._take_ack(header)
        self._accept_data(header, payload)
        if header.flags & FIN and header.seq == self.rcv_nxt:
            self.rcv_nxt += 1
            self.fin_received = True
            self.state = TcpState.CLOSE_WAIT
            self._emit(ACK)

    def _seg_fin_wait_1(self, header, payload):
        self._take_ack(header)
        self._accept_data(header, payload)
        acked = self.snd_una == self.snd_nxt
        if header.flags & FIN and header.seq == self.rcv_nxt:
            self.rcv_nxt += 1
            self.fin_received = True
            self._emit(ACK)
            self.state = TcpState.TIME_WAIT if acked else TcpState.CLOSE_WAIT
        elif acked:
            self.state = TcpState.FIN_WAIT_2

    def _seg_fin_wait_2(self, header, payload):
        self._accept_data(header, payload)
        if header.flags & FIN and header.seq == self.rcv_nxt:
            self.rcv_nxt += 1
            self.fin_received = True
            self._emit(ACK)
            self.state = TcpState.TIME_WAIT

    def _seg_close_wait(self, header, payload):
        self._take_ack(header)

    def _seg_last_ack(self, header, payload):
        self._take_ack(header)
        if self.snd_una == self.snd_nxt:
            self.state = TcpState.CLOSED

    # -- application-facing reads ----------------------------------------------
    def read(self, max_bytes):
        """Dequeue up to ``max_bytes`` from the receive buffer.

        If we had advertised a closed window, draining the buffer sends
        a window update so the stalled sender resumes.
        """
        data = bytes(self.recv_buffer[:max_bytes])
        del self.recv_buffer[:len(data)]
        if data and self._advertised_zero and self.recv_window() >= MSS \
                and self.state is TcpState.ESTABLISHED:
            self._emit(ACK)  # window update reopens the stalled sender
        return data

    @property
    def readable_bytes(self):
        return len(self.recv_buffer)

    def four_tuple(self):
        return (self.local_ip, self.local_port,
                self.remote_ip, self.remote_port)

    def __repr__(self):
        return "TcpConnection(%s:%s <-> %s:%s %s)" % (
            self.local_ip, self.local_port, self.remote_ip,
            self.remote_port, self.state.value,
        )
