"""Threads and their per-compartment stacks.

FlexOS' full MPK gate uses "one call stack per thread per compartment",
with a per-compartment stack registry mapping threads to their local
stack.  A :class:`Thread` therefore owns a *dictionary* of stacks (filled
lazily as the thread first enters each compartment) plus, when the image
uses Data Shadow Stacks, a DSS region per stack.
"""

from __future__ import annotations

import enum
import itertools

from repro.errors import SchedulerError

_TID = itertools.count(1)


class ThreadState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    SLEEPING = "sleeping"
    EXITED = "exited"


class Thread:
    """A cooperative thread driven by a Python generator.

    The generator yields :mod:`repro.kernel.sched` operations (yield_,
    sleep, block) and returns when the thread's work is done.
    """

    def __init__(self, name, body, compartment=0):
        self.tid = next(_TID)
        self.name = name
        self.body = body            # generator factory or generator
        self.home_compartment = compartment
        self.state = ThreadState.READY
        self.wake_at_cycles = 0.0
        #: Virtual cycle at which the thread last became runnable; the
        #: SMP scheduler will not start a slice before this point even on
        #: a core whose local clock is still behind it.
        self.ready_at_cycles = 0.0
        self.result = None
        #: The :class:`~repro.obs.spans.RequestSpan` this thread is
        #: currently serving (set by the span tracker at claim, cleared
        #: when the entry-point call returns).  Riding on the thread —
        #: not the call stack — is what carries span context across
        #: Sleep/Block reschedules and SMP core migrations.
        self.span = None
        #: compartment id -> stack Region (the stack registry entry).
        self.stacks = {}
        #: compartment id -> DSS Region.
        self.dss = {}
        self._gen = None

    def start(self):
        if self._gen is not None:
            raise SchedulerError("thread %s already started" % self.name)
        self._gen = self.body() if callable(self.body) else self.body
        return self._gen

    @property
    def generator(self):
        if self._gen is None:
            raise SchedulerError("thread %s not started" % self.name)
        return self._gen

    @property
    def alive(self):
        return self.state is not ThreadState.EXITED

    def stack_for(self, compartment):
        """Registry lookup used by the full MPK gate when switching stacks."""
        return self.stacks.get(compartment)

    def __repr__(self):
        return "Thread(%d %s %s)" % (self.tid, self.name, self.state.value)
