"""ramfs: an in-memory filesystem with real inodes and directories.

Implements the driver-side operations the VFS dispatches to: lookup,
create, unlink, read, write, truncate, getattr, mkdir, readdir.  File data
lives in bytearrays; sizes, link counts, and timestamps are maintained for
real so SQLite's journal protocol (create, write, fsync, delete) behaves
faithfully.
"""

from __future__ import annotations

import errno
import itertools

from repro.errors import FsError
from repro.kernel.lib import entrypoint, work
from repro.obs import tracer as obs

_INO = itertools.count(2)  # inode 1 is the root


class Inode:
    """One ramfs inode: a regular file or a directory."""

    __slots__ = ("ino", "is_dir", "data", "children", "nlink", "size",
                 "ctime_ns", "mtime_ns")

    def __init__(self, ino, is_dir):
        self.ino = ino
        self.is_dir = is_dir
        self.data = None if is_dir else bytearray()
        self.children = {} if is_dir else None
        self.nlink = 2 if is_dir else 1
        self.size = 0
        self.ctime_ns = 0
        self.mtime_ns = 0


class RamFs:
    """The in-memory filesystem driver."""

    def __init__(self, costs, time_subsystem=None):
        self.costs = costs
        self.time = time_subsystem
        self.root = Inode(1, is_dir=True)
        self.ops = 0

    # -- helpers -----------------------------------------------------------------
    def _now_ns(self):
        if self.time is None:
            return 0
        return self.time.monotonic_ns()

    def _charge(self, op):
        self.ops += 1
        work(self.costs.ramfs_op)
        tracer = obs.ACTIVE
        if tracer.enabled:
            tracer.fs_op("ramfs", op)

    # -- driver operations ----------------------------------------------------
    @entrypoint("ramfs")
    def lookup(self, dir_inode, name):
        """Find ``name`` in a directory inode; raises ENOENT if missing."""
        self._charge("lookup")
        if not dir_inode.is_dir:
            raise FsError(errno.ENOTDIR, "%r is not a directory" % name)
        child = dir_inode.children.get(name)
        if child is None:
            raise FsError(errno.ENOENT, "no such entry %r" % name)
        return child

    @entrypoint("ramfs")
    def create(self, dir_inode, name, is_dir=False):
        self._charge("create")
        if name in dir_inode.children:
            raise FsError(errno.EEXIST, "entry %r exists" % name)
        inode = Inode(next(_INO), is_dir)
        inode.ctime_ns = inode.mtime_ns = self._now_ns()
        dir_inode.children[name] = inode
        if is_dir:
            dir_inode.nlink += 1
        return inode

    @entrypoint("ramfs")
    def unlink(self, dir_inode, name):
        self._charge("unlink")
        inode = self.lookup(dir_inode, name)
        if inode.is_dir and inode.children:
            raise FsError(errno.ENOTEMPTY, "directory %r not empty" % name)
        del dir_inode.children[name]
        inode.nlink -= 1
        return inode

    @entrypoint("ramfs")
    def read(self, inode, offset, length):
        self._charge("read")
        if inode.is_dir:
            raise FsError(errno.EISDIR, "read of a directory")
        data = bytes(inode.data[offset:offset + length])
        work(len(data) * self.costs.memcpy_per_byte)
        return data

    @entrypoint("ramfs")
    def read_spans(self, inode, offset, lengths):
        """Batched sequential read: one driver crossing for the whole
        span list (the scatter half of :meth:`Vfs.readv
        <repro.kernel.fs.vfs.Vfs.readv>`).

        Returns the chunk list; stops short at EOF like POSIX
        ``readv``.  One fs op is charged for the batch — the point is
        exactly that N spans no longer pay N vfscore→ramfs crossings.
        """
        self._charge("read")
        if inode.is_dir:
            raise FsError(errno.EISDIR, "read of a directory")
        chunks = []
        pos = offset
        total = 0
        for length in lengths:
            data = bytes(inode.data[pos:pos + length])
            chunks.append(data)
            pos += len(data)
            total += len(data)
            if len(data) < length:
                break
        work(total * self.costs.memcpy_per_byte)
        return chunks

    @entrypoint("ramfs")
    def write(self, inode, offset, payload):
        self._charge("write")
        if inode.is_dir:
            raise FsError(errno.EISDIR, "write to a directory")
        end = offset + len(payload)
        if end > len(inode.data):
            inode.data.extend(b"\x00" * (end - len(inode.data)))
        inode.data[offset:end] = payload
        inode.size = len(inode.data)
        inode.mtime_ns = self._now_ns()
        work(len(payload) * self.costs.memcpy_per_byte)
        return len(payload)

    @entrypoint("ramfs")
    def truncate(self, inode, size):
        self._charge("truncate")
        if inode.is_dir:
            raise FsError(errno.EISDIR, "truncate of a directory")
        if size < len(inode.data):
            del inode.data[size:]
        else:
            inode.data.extend(b"\x00" * (size - len(inode.data)))
        inode.size = size
        inode.mtime_ns = self._now_ns()

    @entrypoint("ramfs")
    def getattr(self, inode):
        self._charge("getattr")
        return {
            "ino": inode.ino,
            "is_dir": inode.is_dir,
            "size": inode.size,
            "nlink": inode.nlink,
            "mtime_ns": inode.mtime_ns,
        }

    @entrypoint("ramfs")
    def readdir(self, inode):
        self._charge("readdir")
        if not inode.is_dir:
            raise FsError(errno.ENOTDIR, "readdir of a file")
        return sorted(inode.children)
