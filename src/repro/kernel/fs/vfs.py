"""vfscore: the VFS layer (path resolution, fd table, POSIX file ops).

Dispatches to the mounted filesystem driver (ramfs here).  Every public
operation is a ``vfscore`` entry point, so placing the filesystem in its
own compartment turns each file operation into a gated cross-call — the
effect Fig. 10's MPK3/EPT2 scenarios measure.
"""

from __future__ import annotations

import errno

from repro.errors import FsError
from repro.hw.cpu import current_context
from repro.kernel.lib import entrypoint, work
from repro.obs import tracer as obs

O_RDONLY = 0x0
O_WRONLY = 0x1
O_RDWR = 0x2
O_CREAT = 0x40
O_TRUNC = 0x200
O_APPEND = 0x400

SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2


class OpenFile:
    """One open-file description (shared by dup'ed descriptors)."""

    __slots__ = ("inode", "flags", "pos", "path")

    def __init__(self, inode, flags, path):
        self.inode = inode
        self.flags = flags
        self.pos = 0
        self.path = path

    @property
    def readable(self):
        return (self.flags & 0x3) in (O_RDONLY, O_RDWR)

    @property
    def writable(self):
        return (self.flags & 0x3) in (O_WRONLY, O_RDWR)


class Vfs:
    """The VFS: one mounted driver, a root, and an fd table."""

    def __init__(self, driver, costs):
        self.driver = driver
        self.costs = costs
        self._fds = {}
        self._next_fd = 3  # 0-2 are notionally stdio
        self.ops = 0
        self.syncs = 0

    # -- path handling -----------------------------------------------------------
    def _charge(self, op):
        self.ops += 1
        work(self.costs.vfs_op)
        tracer = obs.ACTIVE
        if tracer.enabled:
            tracer.fs_op("vfscore", op)

    def _resolve_dir(self, path):
        """Resolve the parent directory of ``path``; returns (dir, name)."""
        parts = [p for p in path.split("/") if p]
        if not parts:
            raise FsError(errno.EINVAL, "empty path %r" % path)
        node = self.driver.root
        for part in parts[:-1]:
            node = self.driver.lookup(node, part)
            if not node.is_dir:
                raise FsError(errno.ENOTDIR, "%r in %r" % (part, path))
        return node, parts[-1]

    def _resolve(self, path):
        node, name = self._resolve_dir(path)
        return self.driver.lookup(node, name)

    # -- POSIX-ish operations -------------------------------------------------
    @entrypoint("vfscore")
    def open(self, path, flags=O_RDONLY):
        """Open ``path``; returns an integer file descriptor."""
        self._charge("open")
        parent, name = self._resolve_dir(path)
        try:
            inode = self.driver.lookup(parent, name)
        except FsError as exc:
            if exc.errno != errno.ENOENT or not flags & O_CREAT:
                raise
            inode = self.driver.create(parent, name, is_dir=False)
        if inode.is_dir and flags & 0x3 != O_RDONLY:
            raise FsError(errno.EISDIR, "cannot write directory %r" % path)
        if flags & O_TRUNC and not inode.is_dir:
            self.driver.truncate(inode, 0)
        fd = self._next_fd
        self._next_fd += 1
        handle = OpenFile(inode, flags, path)
        if flags & O_APPEND:
            handle.pos = inode.size
        self._fds[fd] = handle
        return fd

    def _handle(self, fd):
        handle = self._fds.get(fd)
        if handle is None:
            raise FsError(errno.EBADF, "bad file descriptor %d" % fd)
        return handle

    @entrypoint("vfscore")
    def read(self, fd, length):
        self._charge("read")
        handle = self._handle(fd)
        if not handle.readable:
            raise FsError(errno.EBADF, "fd %d not open for reading" % fd)
        data = self.driver.read(handle.inode, handle.pos, length)
        handle.pos += len(data)
        return data

    @entrypoint("vfscore")
    def write(self, fd, payload):
        self._charge("write")
        handle = self._handle(fd)
        if not handle.writable:
            raise FsError(errno.EBADF, "fd %d not open for writing" % fd)
        if handle.flags & O_APPEND:
            handle.pos = handle.inode.size
        written = self.driver.write(handle.inode, handle.pos, payload)
        handle.pos += written
        return written

    @entrypoint("vfscore")
    def readv(self, fd, buf, spans):
        """Scatter-read into ``buf`` (a :class:`ByteBuffer`): one vfscore
        op and one batched protection check for the whole span list.

        ``spans`` is ``[(buf_start, length), ...]``; file bytes are read
        sequentially from the descriptor position into the buffer spans,
        like POSIX ``readv``.  Returns total bytes read (short on EOF).
        """
        self._charge("readv")
        handle = self._handle(fd)
        if not handle.readable:
            raise FsError(errno.EBADF, "fd %d not open for reading" % fd)
        reader = getattr(self.driver, "read_spans", None)
        if reader is not None:
            # Batched driver: one vfscore->ramfs crossing for the whole
            # span list, then one scatter write into the buffer.
            chunks = reader(handle.inode, handle.pos,
                            [length for _, length in spans])
            writes = []
            for (start, _), data in zip(spans, chunks):
                handle.pos += len(data)
                writes.append((start, data))
            return buf.write_vec(current_context(), writes)
        writes = []
        for start, length in spans:
            data = self.driver.read(handle.inode, handle.pos, length)
            handle.pos += len(data)
            writes.append((start, data))
            if len(data) < length:
                break
        return buf.write_vec(current_context(), writes)

    @entrypoint("vfscore")
    def writev(self, fd, buf, spans):
        """Gather-write from ``buf``: the batched mirror of :meth:`readv`.

        Buffer spans are fetched with a single protection check, then
        written sequentially at the descriptor position.  Returns total
        bytes written.
        """
        self._charge("writev")
        handle = self._handle(fd)
        if not handle.writable:
            raise FsError(errno.EBADF, "fd %d not open for writing" % fd)
        payloads = buf.read_vec(current_context(), spans)
        if handle.flags & O_APPEND:
            handle.pos = handle.inode.size
        total = 0
        for payload in payloads:
            written = self.driver.write(handle.inode, handle.pos, payload)
            handle.pos += written
            total += written
        return total

    @entrypoint("vfscore")
    def lseek(self, fd, offset, whence=SEEK_SET):
        self._charge("lseek")
        handle = self._handle(fd)
        if whence == SEEK_SET:
            new = offset
        elif whence == SEEK_CUR:
            new = handle.pos + offset
        elif whence == SEEK_END:
            new = handle.inode.size + offset
        else:
            raise FsError(errno.EINVAL, "bad whence %r" % whence)
        if new < 0:
            raise FsError(errno.EINVAL, "negative seek")
        handle.pos = new
        return new

    @entrypoint("vfscore")
    def fsync(self, fd):
        """Flush a file.  ramfs has no backing store, but the journal
        protocol's ordering point is still charged (it is a real barrier
        on the paper's testbed)."""
        self._charge("fsync")
        self._handle(fd)
        self.syncs += 1
        work(self.costs.vfs_op)
        return 0

    @entrypoint("vfscore")
    def close(self, fd):
        self._charge("close")
        self._handle(fd)
        del self._fds[fd]
        return 0

    @entrypoint("vfscore")
    def unlink(self, path):
        self._charge("unlink")
        parent, name = self._resolve_dir(path)
        self.driver.unlink(parent, name)
        return 0

    @entrypoint("vfscore")
    def mkdir(self, path):
        self._charge("mkdir")
        parent, name = self._resolve_dir(path)
        self.driver.create(parent, name, is_dir=True)
        return 0

    @entrypoint("vfscore")
    def stat(self, path):
        self._charge("stat")
        inode = self._resolve(path)
        return self.driver.getattr(inode)

    @entrypoint("vfscore")
    def listdir(self, path="/"):
        self._charge("listdir")
        if path == "/":
            return self.driver.readdir(self.driver.root)
        return self.driver.readdir(self._resolve(path))

    @entrypoint("vfscore")
    def exists(self, path):
        self._charge("exists")
        try:
            self._resolve(path)
            return True
        except FsError:
            return False

    @property
    def open_fds(self):
        return len(self._fds)
