"""Filesystem substrate: ``vfscore`` (VFS) over ``ramfs``.

The paper ports both as one unit: "ramfs is so deeply entangled with
vfscore that blindly isolating it without redesign would impair
performance ... coupled with vfscore, both components can perfectly well
be isolated from the rest of the system" (Section 4.4).  Accordingly our
configuration layer treats ``filesystem`` as a single component mapping to
both libraries.
"""

from repro.kernel.fs.ramfs import RamFs
from repro.kernel.fs.vfs import O_APPEND, O_CREAT, O_RDONLY, O_RDWR, O_TRUNC, O_WRONLY, Vfs

__all__ = [
    "O_APPEND",
    "O_CREAT",
    "O_RDONLY",
    "O_RDWR",
    "O_TRUNC",
    "O_WRONLY",
    "RamFs",
    "Vfs",
]
