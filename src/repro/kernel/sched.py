"""Cooperative scheduler (``uksched``) with the backend hook API.

A round-robin cooperative scheduler over generator-based threads.  Threads
yield scheduler operations:

* ``yield_()``      — give up the CPU, stay runnable.
* ``sleep(ns)``     — sleep for virtual nanoseconds.
* ``block(queue)``  — wait until the queue wakes the thread.
* ``exit_()``       — terminate (also implied by returning).

Backends extend core libraries through *hooks* rather than rewrites
(Section 3.2): the MPK backend, for example, registers a ``thread_create``
hook that switches a newly created thread to the right protection domain
and populates its per-compartment stack registry.  Hook calls are free at
runtime (the paper inlines them); here we simply do not charge for the
dispatch itself, only for what hooks do.

This is also the component the authors formally verified with Dafny; the
invariants checked by :meth:`Scheduler.check_invariants` are the ones that
proof is about (no thread both runnable and sleeping, a single RUNNING
thread, wake-ups never lost).
"""

from __future__ import annotations

from collections import deque

from repro.errors import SchedulerError
from repro.hw.cpu import maybe_current_context
from repro.kernel.lib import entrypoint, work
from repro.kernel.thread import Thread, ThreadState
from repro.obs import tracer as obs

HOOK_EVENTS = ("thread_create", "thread_switch", "thread_exit", "boot")


class SchedOp:
    """Base class for operations a thread generator may yield."""


class Yield(SchedOp):
    """Cooperatively give up the CPU."""


class Sleep(SchedOp):
    def __init__(self, ns):
        if ns < 0:
            raise SchedulerError("cannot sleep negative time")
        self.ns = ns


class Block(SchedOp):
    def __init__(self, queue):
        self.queue = queue


class Exit(SchedOp):
    """Terminate the current thread."""


def yield_():
    return Yield()


def sleep(ns):
    return Sleep(ns)


def block(queue):
    return Block(queue)


def exit_():
    return Exit()


class WaitQueue:
    """A queue of blocked threads, woken explicitly."""

    def __init__(self, name="waitq"):
        self.name = name
        self._waiters = deque()

    def add(self, thread):
        self._waiters.append(thread)

    def wake_one(self):
        """Make the oldest waiter runnable; returns it or None."""
        if not self._waiters:
            return None
        thread = self._waiters.popleft()
        thread.state = ThreadState.READY
        return thread

    def wake_all(self):
        woken = []
        while self._waiters:
            woken.append(self.wake_one())
        return woken

    def __len__(self):
        return len(self._waiters)


class Scheduler:
    """Cooperative round-robin scheduler with a hook API for backends."""

    def __init__(self, clock, costs):
        self.clock = clock
        self.costs = costs
        self.threads = []
        self._run_queue = deque()
        self._sleepers = []
        self.current = None
        #: The thread most recently dispatched.  Unlike ``current`` (which
        #: is None whenever no thread is actually on the CPU), this survives
        #: descheduling so traces can name the "from" side of a switch.
        self.last_dispatched = None
        self.switches = 0
        self._hooks = {event: [] for event in HOOK_EVENTS}

    # -- hook API (Section 3.2) ---------------------------------------------
    def register_hook(self, event, callback):
        """Attach a backend callback to a scheduler event."""
        if event not in self._hooks:
            raise SchedulerError("unknown scheduler hook %r" % event)
        self._hooks[event].append(callback)

    def _fire(self, event, *args):
        for callback in self._hooks[event]:
            callback(*args)

    # -- thread lifecycle ------------------------------------------------------
    @entrypoint("uksched")
    def create_thread(self, name, body, compartment=0):
        """Create and start a thread; returns the :class:`Thread`."""
        work(self.costs.context_switch / 2.0)
        thread = Thread(name, body, compartment=compartment)
        thread.start()
        thread.ready_at_cycles = self.clock.cycles
        self.threads.append(thread)
        self._run_queue.append(thread)
        self._fire("thread_create", thread)
        return thread

    @entrypoint("uksched")
    def wake(self, queue):
        """Wake one waiter on ``queue`` (e.g. data arrived on a socket)."""
        work(self.costs.sched_yield)
        thread = queue.wake_one()
        if thread is not None:
            thread.ready_at_cycles = self.clock.cycles
            self._run_queue.append(thread)
            tracer = obs.ACTIVE
            if tracer.enabled:
                tracer.thread_wake(thread)
        return thread

    @entrypoint("uksched")
    def wake_all(self, queue):
        work(self.costs.sched_yield)
        woken = queue.wake_all()
        tracer = obs.ACTIVE
        for thread in woken:
            thread.ready_at_cycles = self.clock.cycles
            if tracer.enabled:
                tracer.thread_wake(thread)
        self._run_queue.extend(woken)
        return woken

    # -- the dispatch loop -------------------------------------------------------
    def _advance_to_wakeups(self):
        """If nothing is runnable, jump the clock to the next wake-up."""
        if self._run_queue or not self._sleepers:
            return
        next_wake = min(t.wake_at_cycles for t in self._sleepers)
        if next_wake > self.clock.cycles:
            self.clock.charge(next_wake - self.clock.cycles)

    def _collect_wakeups(self):
        still_sleeping = []
        tracer = obs.ACTIVE
        for thread in self._sleepers:
            if thread.wake_at_cycles <= self.clock.cycles:
                thread.state = ThreadState.READY
                thread.ready_at_cycles = thread.wake_at_cycles
                self._run_queue.append(thread)
                if tracer.enabled:
                    tracer.thread_wake(thread)
            else:
                still_sleeping.append(thread)
        self._sleepers = still_sleeping

    @entrypoint("uksched")
    def _prepare_dispatch(self, thread):
        """The scheduler-side half of a dispatch: bookkeeping + hooks.

        This is the part that lives in the uksched compartment (and thus
        crosses a gate when the scheduler is isolated); the thread body
        itself then resumes in its own protection domain, not the
        scheduler's.
        """
        work(self.costs.context_switch)
        self.switches += 1
        previous = self.current if self.current is not None \
            else self.last_dispatched
        self.current = thread
        self.last_dispatched = thread
        thread.state = ThreadState.RUNNING
        tracer = obs.ACTIVE
        if tracer.enabled:
            tracer.context_switch(
                previous.name if previous is not None else None, thread.name,
            )
        self._fire("thread_switch", previous, thread)

    def _dispatch(self, thread, value):
        """Resume ``thread``; returns the operation it yielded (or Exit)."""
        self._prepare_dispatch(thread)
        ctx = maybe_current_context()
        if ctx is not None:
            ctx.current_thread = thread
        try:
            return thread.generator.send(value)
        except StopIteration as stop:
            thread.result = stop.value
            return Exit()

    def run(self, max_switches=1_000_000):
        """Run until every thread exited (or the switch budget is hit)."""
        budget = max_switches
        while True:
            self._collect_wakeups()
            self._advance_to_wakeups()
            self._collect_wakeups()
            if not self._run_queue:
                blocked = [
                    t for t in self.threads
                    if t.state is ThreadState.BLOCKED
                ]
                if blocked:
                    raise SchedulerError(
                        "deadlock: %s blocked forever"
                        % ", ".join(t.name for t in blocked)
                    )
                return
            thread = self._run_queue.popleft()
            if not thread.alive:
                continue
            op = self._dispatch(thread, None)
            self._apply(thread, op)
            budget -= 1
            if budget <= 0 and any(t.alive for t in self.threads):
                raise SchedulerError("scheduler switch budget exhausted")

    @entrypoint("uksched")
    def _account_yield(self):
        """Scheduler-side cost of handling one yielded operation."""
        work(self.costs.sched_yield)

    def _apply(self, thread, op):
        if isinstance(op, Exit):
            thread.state = ThreadState.EXITED
            self._fire("thread_exit", thread)
        elif isinstance(op, Yield):
            self._account_yield()
            thread.state = ThreadState.READY
            thread.ready_at_cycles = self.clock.cycles
            self._run_queue.append(thread)
        elif isinstance(op, Sleep):
            self._account_yield()
            thread.state = ThreadState.SLEEPING
            thread.wake_at_cycles = (
                self.clock.cycles + self.clock.ns_to_cycles(op.ns)
            )
            self._sleepers.append(thread)
        elif isinstance(op, Block):
            self._account_yield()
            thread.state = ThreadState.BLOCKED
            op.queue.add(thread)
        else:
            raise SchedulerError(
                "thread %s yielded a non-operation: %r" % (thread.name, op)
            )
        # The thread is off the CPU whichever way it descheduled; leaving
        # ``current`` pointing at a READY/SLEEPING/BLOCKED thread between
        # dispatches violated the RUNNING-or-None invariant.
        if self.current is thread:
            self.current = None

    # -- verified invariants (Dafny model, Section 3.3) --------------------------
    def check_invariants(self):
        """Assert the scheduler state invariants; raises on violation."""
        running = [t for t in self.threads if t.state is ThreadState.RUNNING]
        if len(running) > 1:
            raise SchedulerError("more than one RUNNING thread")
        if self.current is not None \
                and self.current.state is not ThreadState.RUNNING:
            raise SchedulerError(
                "current thread %s is %s, not RUNNING"
                % (self.current.name, self.current.state.value)
            )
        queued = set(id(t) for t in self._run_queue)
        for thread in self._sleepers:
            if id(thread) in queued:
                raise SchedulerError(
                    "thread %s both sleeping and runnable" % thread.name
                )
            if thread.state is not ThreadState.SLEEPING:
                raise SchedulerError(
                    "sleeper %s not in SLEEPING state" % thread.name
                )
        for thread in self._run_queue:
            if thread.state not in (ThreadState.READY, ThreadState.EXITED):
                raise SchedulerError(
                    "queued thread %s in state %s"
                    % (thread.name, thread.state.value)
                )
        return True
