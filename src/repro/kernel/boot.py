"""Early boot (``ukboot``).

Boot code is TCB: "malfunctioning or malicious early boot code can set up
the system in an unsafe manner" (Section 3.3).  The boot plan is an
ordered list of named steps; the protection-setup step (stamping section
protection keys) must run before any non-TCB step, and
:meth:`BootPlan.run` enforces that ordering.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.kernel.lib import work


class BootStep:
    """One named boot action."""

    __slots__ = ("name", "action", "tcb")

    def __init__(self, name, action, tcb=False):
        self.name = name
        self.action = action
        self.tcb = tcb


class BootPlan:
    """Ordered boot steps with TCB-before-everything enforcement."""

    #: Modelled cost of one boot step (setup code, not on any hot path).
    STEP_COST = 5_000.0

    def __init__(self):
        self._steps = []
        self.completed = []

    def add(self, name, action, tcb=False):
        self._steps.append(BootStep(name, action, tcb=tcb))
        return self

    def run(self):
        """Execute all steps in order; returns the completed step names."""
        seen_non_tcb = False
        for step in self._steps:
            if step.tcb and seen_non_tcb:
                raise ConfigError(
                    "boot step %r is TCB but runs after non-TCB steps"
                    % step.name
                )
            if not step.tcb:
                seen_non_tcb = True
            work(self.STEP_COST)
            step.action()
            self.completed.append(step.name)
        return list(self.completed)
