"""newlib-style libc layer.

The libc the paper's user code links against (Redis links newlib).  It
provides:

* blocking socket wrappers (generator-based: they poll the stack and
  yield to the scheduler until data arrives — this is where the app <->
  scheduler communication the Redis evaluation measures comes from);
* string/memory helpers whose cost scales with the data;
* malloc/free forwarding to the compartment's heap.

Every function is a ``newlib`` entry point, so putting the application and
its libc in different compartments is possible (though the paper's
configurations keep ``redis+newlib`` together, and so do ours).
"""

from __future__ import annotations

from repro.errors import NetworkError
from repro.kernel.lib import entrypoint, work
from repro.kernel.net.socket import Socket
from repro.kernel.sched import yield_


class Libc:
    """One image's libc instance."""

    def __init__(self, costs, memmgr=None, default_compartment=0):
        self.costs = costs
        self.memmgr = memmgr
        self.default_compartment = default_compartment

    # -- memory ----------------------------------------------------------------
    @entrypoint("newlib")
    def malloc(self, size, compartment=None):
        comp = self.default_compartment if compartment is None else compartment
        return self.memmgr.malloc(comp, size)

    @entrypoint("newlib")
    def free(self, allocation):
        allocation.free()

    # -- strings / memory ---------------------------------------------------------
    @entrypoint("newlib")
    def memcpy(self, data):
        """Model a copy of ``data``; returns an independent bytes object."""
        work(len(data) * self.costs.memcpy_per_byte)
        return bytes(data)

    @entrypoint("newlib")
    def strlen(self, data):
        work(len(data) * self.costs.memcpy_per_byte / 2.0)
        return len(data)

    @entrypoint("newlib")
    def snprintf(self, fmt, *args):
        work(len(fmt) * 0.5 + 40)
        return fmt % args if args else fmt

    # -- sockets --------------------------------------------------------------
    @entrypoint("newlib")
    def socket(self, stack):
        work(self.costs.function_call)
        return Socket(stack)

    def recv_blocking(self, sock, max_bytes, max_polls=100_000):
        """Generator: blocking recv.

        Polls the socket; while empty, yields to the scheduler (the
        app->uksched edge).  Returns the received bytes, or b'' if the
        peer closed the connection.
        """
        polls = 0
        while True:
            data = sock.try_recv(max_bytes)
            if data:
                return data
            if sock.peer_closed and sock.readable == 0:
                return b""
            polls += 1
            if polls > max_polls:
                raise NetworkError("recv stalled: no data after %d polls"
                                   % max_polls)
            yield yield_()

    def accept_blocking(self, sock, max_polls=100_000):
        """Generator: blocking accept; returns the connected socket."""
        polls = 0
        while True:
            accepted = sock.try_accept()
            if accepted is not None:
                return accepted
            polls += 1
            if polls > max_polls:
                raise NetworkError("accept stalled after %d polls" % max_polls)
            yield yield_()

    def connect_blocking(self, sock, ip, port, max_polls=100_000):
        """Generator: blocking connect; returns when ESTABLISHED."""
        sock.connect_start(ip, port)
        polls = 0
        while not sock.connected:
            sock.stack.pump()
            polls += 1
            if polls > max_polls:
                raise NetworkError("connect stalled after %d polls" % max_polls)
            yield yield_()
        return sock

    @entrypoint("newlib")
    def send(self, sock, payload):
        return sock.send(payload)
