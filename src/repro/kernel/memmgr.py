"""Memory manager (``ukalloc``): heaps, stacks, and shared domains.

Part of the TCB: "the memory manager can manipulate page table mappings in
order to freely access any compartment's memory" (Section 3.3), which is
why it is trusted regardless of the isolation mechanism.

One heap per compartment plus one shared heap for communications (the
paper's prototype uses a single shared heap for all shared allocations).
Thread stacks are carved per thread *per compartment* (the MPK full gate
switches stacks via a per-compartment stack registry), and each stack can
be doubled with a Data Shadow Stack region in the shared domain.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.hw.memory import PAGE_SIZE, Perm
from repro.hw.mpk import DEFAULT_PKEY
from repro.kernel.allocators import make_allocator
from repro.kernel.lib import entrypoint

#: FlexOS uses small stacks: 8 pages (Section 6.5).
STACK_PAGES = 8
STACK_SIZE = STACK_PAGES * PAGE_SIZE

DEFAULT_HEAP_SIZE = 4 << 20
DEFAULT_SHARED_HEAP_SIZE = 2 << 20


class MemoryManager:
    """Owns heap and stack regions and their allocators."""

    def __init__(self, memory, allocator_kind="tlsf"):
        self.memory = memory
        self.allocator_kind = allocator_kind
        self._heaps = {}          # compartment id -> Allocator
        self._heap_kinds = {}     # compartment id -> allocator kind
        self._shared_heap = None
        self._shared_pkey = DEFAULT_PKEY
        #: Heap reinitialisations performed (supervisor restart policy).
        self.heap_resets = 0

    # -- heaps ------------------------------------------------------------------
    def create_heap(self, compartment, pkey=DEFAULT_PKEY,
                    size=DEFAULT_HEAP_SIZE, kind=None):
        """Create the private heap of ``compartment``."""
        if compartment in self._heaps:
            raise ConfigError("compartment %s already has a heap" % compartment)
        region = self.memory.add_region(
            ".heap.comp%s" % compartment, size, perm=Perm.RW, pkey=pkey,
            compartment=compartment, kind="heap",
        )
        allocator = make_allocator(kind or self.allocator_kind, region)
        self._heaps[compartment] = allocator
        self._heap_kinds[compartment] = kind or self.allocator_kind
        return allocator

    def reset_heap(self, compartment):
        """Reinitialise a compartment's heap over its existing region.

        The compartment-restart path of the fault supervisor: every live
        allocation is dropped and a fresh allocator of the same kind is
        installed — the modelled equivalent of re-running the
        compartment's heap constructor after a crash.
        """
        old = self.heap_of(compartment)
        fresh = make_allocator(
            self._heap_kinds.get(compartment, self.allocator_kind),
            old.region,
        )
        self._heaps[compartment] = fresh
        self.heap_resets += 1
        return fresh

    def create_shared_heap(self, pkey, size=DEFAULT_SHARED_HEAP_SIZE,
                           kind=None):
        """Create the communications heap visible to every compartment."""
        region = self.memory.add_region(
            ".heap.shared", size, perm=Perm.RW, pkey=pkey,
            compartment=None, kind="shared",
        )
        self._shared_pkey = pkey
        self._shared_heap = make_allocator(kind or self.allocator_kind, region)
        return self._shared_heap

    def heap_of(self, compartment):
        if compartment not in self._heaps:
            raise ConfigError("compartment %s has no heap" % compartment)
        return self._heaps[compartment]

    @property
    def shared_heap(self):
        if self._shared_heap is None:
            raise ConfigError("no shared heap was created")
        return self._shared_heap

    @property
    def has_shared_heap(self):
        return self._shared_heap is not None

    def create_restricted_shared_heap(self, name, pkey, size=1 << 20,
                                      kind=None):
        """A shared heap visible only to a restricted compartment group.

        Backs the paper's use of leftover MPK keys: "FlexOS uses remaining
        keys for additional shared domains between restricted groups of
        compartments" (Section 4.1).
        """
        region = self.memory.add_region(
            ".heap.shared.%s" % name, size, perm=Perm.RW, pkey=pkey,
            compartment=None, kind="shared",
        )
        return make_allocator(kind or self.allocator_kind, region)

    @entrypoint("ukalloc")
    def malloc(self, compartment, size):
        """Allocate from a compartment's private heap."""
        return self.heap_of(compartment).malloc(size)

    @entrypoint("ukalloc")
    def malloc_shared(self, size):
        """Allocate from the shared communications heap."""
        return self.shared_heap.malloc(size)

    # -- stacks -----------------------------------------------------------------
    def create_stack(self, thread_name, compartment, pkey=DEFAULT_PKEY,
                     with_dss=False, dss_pkey=None):
        """Carve a thread stack, optionally doubled with a DSS.

        Returns ``(stack_region, dss_region_or_None)``.  The DSS occupies
        the upper half of a doubled stack and lives in the shared domain:
        the shadow of stack variable ``x`` is ``&x + STACK_SIZE``.
        """
        stack = self.memory.add_region(
            ".stack.%s.comp%s" % (thread_name, compartment),
            STACK_SIZE, perm=Perm.RW, pkey=pkey,
            compartment=compartment, kind="stack",
        )
        dss = None
        if with_dss:
            dss = self.memory.add_region(
                ".dss.%s.comp%s" % (thread_name, compartment),
                STACK_SIZE, perm=Perm.RW,
                pkey=self._shared_pkey if dss_pkey is None else dss_pkey,
                compartment=None, kind="dss",
            )
        return stack, dss

    def compartments(self):
        return sorted(self._heaps)
