"""Time subsystem (``uktime``).

The smallest component the paper ports (10 minutes, zero shared
variables — Table 1): it exposes monotonic and wall-clock reads derived
from the virtual cycle counter.  SQLite's journal timestamps go through
here, which is why Fig. 10's MPK3 scenario isolates uktime in its own
compartment.
"""

from __future__ import annotations

from repro.kernel.lib import entrypoint, work

#: Arbitrary boot epoch (2022-02-28, the first day of ASPLOS'22).
BOOT_EPOCH_NS = 1_645_999_200 * 1_000_000_000


class TimeSubsystem:
    """Monotonic + wall clock reads, charged like rdtsc-based gettime."""

    def __init__(self, clock, costs):
        self.clock = clock
        self.costs = costs
        self.reads = 0

    @entrypoint("uktime")
    def monotonic_ns(self):
        """Nanoseconds since boot."""
        work(self.costs.timer_read)
        self.reads += 1
        return int(self.clock.ns)

    @entrypoint("uktime")
    def wall_clock_ns(self):
        """Nanoseconds since the Unix epoch."""
        work(self.costs.timer_read)
        self.reads += 1
        return BOOT_EPOCH_NS + int(self.clock.ns)

    @entrypoint("uktime")
    def uptime_seconds(self):
        work(self.costs.timer_read)
        self.reads += 1
        return self.clock.seconds
