"""SMP run-to-yield scheduler over virtual cores.

:class:`SmpScheduler` dispatches the same shared run queue as the serial
:class:`~repro.kernel.sched.Scheduler`, but across N :class:`VirtualCore`
instances, each keeping its own position on the virtual timeline.  The
execution model is discrete-event simulation:

* Slices are **run-to-yield**: a thread runs from dispatch until it
  yields a scheduler operation, exactly as under the serial scheduler.
  Within a slice the shared :class:`~repro.hw.clock.Clock` only advances
  (through ``charge``), so every existing cost model and tracer hook
  works unchanged.
* Between slices the scheduler picks the core with the **earliest local
  clock** (ties break to the lowest core index) and *warps* the shared
  clock to that core's position (:meth:`Clock.warp_to` — the single
  sanctioned non-monotonic clock movement in the tree).  Slices on
  different cores therefore overlap in virtual time even though the
  Python execution is serialised.
* A thread never starts before :attr:`Thread.ready_at_cycles` — the
  point on the global timeline at which it became runnable.  A core
  whose local clock is behind that point idles forward to it.
* The run returns with the clock at the **makespan**: the maximum local
  core time.  With one core that equals the serial scheduler's finish
  time exactly.

Differential guarantee (tested in ``tests/test_smp.py``): at N=1 every
warp is a no-op, the dispatch order is the serial round-robin order, and
the entire run — cycles, trace events, fault counters, reply bytes — is
identical to the serial reference scheduler.  The serial scheduler stays
the verified reference (its invariants mirror the paper's Dafny model);
this class only overrides the dispatch loop, inheriting thread
lifecycle, wake-up bookkeeping, hooks, and invariant checks.

Isolation state: the permission TLB is per-core.  Core 0 adopts the
execution context's existing TLB (preserving N=1 identity); other cores
get their own, cold, :class:`~repro.hw.tlb.PermissionTLB`, and the
context's TLB pointer is switched on every dispatch, modelling per-CPU
translation state.  The PKRU itself stays shared: run-to-yield slices
begin and end at the base protection state (gates restore PKRU on
unwind), so cores never observe each other's mid-gate register state.
"""

from __future__ import annotations

from repro.errors import SchedulerError
from repro.hw.cpu import maybe_current_context
from repro.hw.tlb import PermissionTLB
from repro.kernel.sched import Scheduler
from repro.kernel.thread import ThreadState
from repro.obs import tracer as obs


class VirtualCore:
    """One virtual CPU: a position on the timeline plus bookkeeping."""

    __slots__ = ("index", "cycles", "busy_cycles", "idle_cycles",
                 "dispatches", "tlb", "_tlb_ready")

    def __init__(self, index):
        self.index = index
        self.cycles = 0.0
        self.busy_cycles = 0.0
        self.idle_cycles = 0.0
        self.dispatches = 0
        self.tlb = None
        self._tlb_ready = False

    def stats(self):
        return {
            "core": self.index,
            "cycles": self.cycles,
            "busy_cycles": self.busy_cycles,
            "idle_cycles": self.idle_cycles,
            "dispatches": self.dispatches,
        }

    def __repr__(self):
        return "VirtualCore(%d at %.0f, %d dispatches)" % (
            self.index, self.cycles, self.dispatches,
        )


class SmpScheduler(Scheduler):
    """Run-to-yield SMP scheduler; N=1 is trace-identical to serial."""

    def __init__(self, clock, costs, n_cores=1):
        if n_cores < 1:
            raise SchedulerError("need at least one core, got %d" % n_cores)
        super().__init__(clock, costs)
        self.cores = [VirtualCore(i) for i in range(n_cores)]
        self.n_cores = n_cores

    # -- per-core isolation state -----------------------------------------------
    def _install_core_tlb(self, ctx, core):
        """Point the execution context at this core's permission TLB."""
        if not core._tlb_ready:
            core._tlb_ready = True
            if core.index == 0 or ctx.tlb is None:
                # Core 0 adopts the boot TLB so a single-core run touches
                # exactly the same object graph as the serial scheduler;
                # when the kill switch disabled the TLB, every core runs
                # without one.
                core.tlb = ctx.tlb
            else:
                core.tlb = PermissionTLB()
        ctx.tlb = core.tlb

    # -- the dispatch loop -------------------------------------------------------
    def run(self, max_switches=1_000_000):
        """Run until every thread exited (or the switch budget is hit).

        On return the shared clock sits at the makespan — the largest
        local core time — which is what latency measurements must read.
        """
        budget = max_switches
        tracer = obs.ACTIVE
        # Cores come online at the point the timeline has reached when
        # the dispatch loop is entered (boot and thread creation charged
        # the shared clock before any core ran); without this, the first
        # slice would warp back into the pre-run() past.  Also makes
        # run() re-entrant: a second call catches the cores up first.
        for core in self.cores:
            if core.cycles < self.clock.cycles:
                core.cycles = self.clock.cycles
        while True:
            core = min(self.cores, key=lambda c: (c.cycles, c.index))
            if core.cycles != self.clock.cycles:
                self.clock.warp_to(core.cycles)
            self._collect_wakeups()
            if not self._run_queue:
                if self._sleepers:
                    # Idle this core forward to the next wake-up, then
                    # rescan: another core may now be the earliest.
                    next_wake = min(
                        t.wake_at_cycles for t in self._sleepers
                    )
                    if next_wake > core.cycles:
                        core.idle_cycles += next_wake - core.cycles
                        core.cycles = next_wake
                    continue
                blocked = [
                    t for t in self.threads
                    if t.state is ThreadState.BLOCKED
                ]
                if blocked:
                    raise SchedulerError(
                        "deadlock: %s blocked forever"
                        % ", ".join(t.name for t in blocked)
                    )
                makespan = max(c.cycles for c in self.cores)
                if makespan != self.clock.cycles:
                    self.clock.warp_to(makespan)
                return
            thread = self._run_queue.popleft()
            if not thread.alive:
                continue
            start = max(core.cycles, thread.ready_at_cycles)
            if start > core.cycles:
                core.idle_cycles += start - core.cycles
                core.cycles = start
                self.clock.warp_to(start)
            ctx = maybe_current_context()
            if ctx is not None:
                self._install_core_tlb(ctx, core)
            if tracer.enabled:
                tracer.core_dispatch(core.index, len(self._run_queue),
                                     thread=thread)
            op = self._dispatch(thread, None)
            self._apply(thread, op)
            end = self.clock.cycles
            core.busy_cycles += end - start
            core.cycles = end
            core.dispatches += 1
            budget -= 1
            if budget <= 0 and any(t.alive for t in self.threads):
                raise SchedulerError("scheduler switch budget exhausted")

    # -- introspection ----------------------------------------------------------
    def core_stats(self):
        """Per-core bookkeeping as a JSON-serialisable list."""
        return [core.stats() for core in self.cores]

    def makespan_cycles(self):
        return max(core.cycles for core in self.cores)

    def __repr__(self):
        return "SmpScheduler(%d cores, %d switches)" % (
            self.n_cores, self.switches,
        )
