"""Common allocator machinery.

Allocators hand out :class:`Allocation` records (offset + size within their
heap region).  Cycle accounting distinguishes the malloc fast path (a free
block of the right class is immediately available) from the slow path
(splitting, coalescing, or list search), matching the paper's observation
that an alloc+free pair costs 30-60 cycles on the fast path and "up to
thousands of cycles on the slow path".
"""

from __future__ import annotations

from repro.errors import AllocationError, InvalidFree
from repro.kernel.lib import work
from repro.obs import tracer as obs

#: All allocations are rounded up to this granule, like real allocators.
MIN_BLOCK = 16


def round_up(size, granule=MIN_BLOCK):
    if size <= 0:
        size = 1
    return (size + granule - 1) // granule * granule


class Allocation:
    """One live allocation inside a heap region."""

    __slots__ = ("offset", "size", "allocator")

    def __init__(self, offset, size, allocator):
        self.offset = offset
        self.size = size
        self.allocator = allocator

    @property
    def address(self):
        return self.allocator.region.base + self.offset

    def free(self):
        self.allocator.free(self)

    def __repr__(self):
        return "Allocation(off=0x%x size=%d via %s)" % (
            self.offset, self.size, type(self.allocator).__name__,
        )


class AllocatorStats:
    """Counters every allocator maintains."""

    def __init__(self):
        self.allocs = 0
        self.frees = 0
        self.fast_allocs = 0
        self.slow_allocs = 0
        self.bytes_live = 0
        self.bytes_peak = 0

    def on_alloc(self, size, fast):
        self.allocs += 1
        if fast:
            self.fast_allocs += 1
        else:
            self.slow_allocs += 1
        self.bytes_live += size
        self.bytes_peak = max(self.bytes_peak, self.bytes_live)

    def on_free(self, size):
        self.frees += 1
        self.bytes_live -= size


class Allocator:
    """Abstract allocator over one heap region."""

    #: Per-operation base costs; subclasses may override the charge methods
    #: to reflect their structural differences (TLSF is O(1) but has a
    #: higher constant; Lea's small bins are very fast but large requests
    #: search).
    FAST_COST_FIELD = "heap_alloc_fast"
    SLOW_COST_FIELD = "heap_alloc_slow"
    FREE_COST_FIELD = "heap_free_fast"

    def __init__(self, region):
        self.region = region
        self.stats = AllocatorStats()
        self._live = {}  # offset -> Allocation
        #: Optional callable(size) -> bool; True makes the allocation fail
        #: (fault injection: modelled OOM without exhausting the region).
        self.failure_hook = None
        self._fail_countdown = 0
        #: Injected failures served so far (campaign accounting).
        self.injected_failures = 0
        #: Context of the last :meth:`_engine` lookup (hook plumbing).
        self._engine_ctx = None

    # -- interface subclasses implement ------------------------------------
    def _alloc_block(self, size):
        """Return (offset, fast) or raise AllocationError."""
        raise NotImplementedError

    def _free_block(self, offset, size):
        raise NotImplementedError

    # -- fault injection ------------------------------------------------------
    def fail_next(self, count=1):
        """Make the next ``count`` allocations fail with an injected OOM."""
        self._fail_countdown = count

    def _maybe_inject_failure(self, size):
        fail = False
        if self._fail_countdown > 0:
            self._fail_countdown -= 1
            fail = True
        elif self.failure_hook is not None and self.failure_hook(size):
            fail = True
        if fail:
            self.injected_failures += 1
            tracer = obs.ACTIVE
            if tracer.enabled:
                tracer.fault(
                    "AllocationError", injected=True, bytes=size,
                    region=self.region.name,
                )
            error = AllocationError(
                "injected OOM: %s refused %d bytes in region %s"
                % (type(self).__name__, size, self.region.name)
            )
            error.injected = True
            raise error

    # -- public API ---------------------------------------------------------
    def malloc(self, size):
        """Allocate ``size`` bytes; returns an :class:`Allocation`.

        The allocation itself (block search, stats, failure injection)
        always happens; only the per-op charge and trace event can be
        elided when an executing datapath-compiler plan batched this op
        into its segment's single sized arena request.
        """
        size = round_up(size)
        self._maybe_inject_failure(size)
        offset, fast = self._alloc_block(size)
        self.stats.on_alloc(size, fast)
        engine = self._engine()
        if engine is None or not engine.on_alloc(
                self._engine_ctx, self.region.name, size, fast):
            self._charge_alloc(fast)
            tracer = obs.ACTIVE
            if tracer.enabled:
                tracer.alloc_op("alloc", self.region.name, size, fast=fast)
        allocation = Allocation(offset, size, self)
        self._live[offset] = allocation
        return allocation

    def free(self, allocation):
        """Release an allocation previously returned by :meth:`malloc`."""
        live = self._live.pop(allocation.offset, None)
        if live is not allocation:
            raise InvalidFree(
                "free of unknown allocation at offset 0x%x" % allocation.offset
            )
        self._free_block(allocation.offset, allocation.size)
        self.stats.on_free(allocation.size)
        engine = self._engine()
        if engine is None or not engine.on_free(
                self._engine_ctx, self.region.name):
            self._charge_free()
            tracer = obs.ACTIVE
            if tracer.enabled:
                tracer.alloc_op("free", self.region.name, allocation.size)

    def _engine(self):
        """The active datapath-compiler engine, or None (the usual case).

        Also caches the context it was found on (``_engine_ctx``) so the
        hook call right after the lookup does not re-derive it.
        """
        from repro.hw.cpu import maybe_current_context

        ctx = maybe_current_context()
        self._engine_ctx = ctx
        if ctx is None:
            return None
        engine = ctx.compiler
        if engine is not None and engine.state:
            return engine
        return None

    def calloc(self, size):
        """malloc + zeroing charge."""
        allocation = self.malloc(size)
        work(size * 0.0625)  # memset at ~16 B/cycle
        return allocation

    @property
    def live_allocations(self):
        return len(self._live)

    def owns(self, allocation):
        return self._live.get(allocation.offset) is allocation

    # -- cost charging -------------------------------------------------------
    def _charge_alloc(self, fast):
        from repro.hw.costs import DEFAULT_COSTS
        from repro.hw.cpu import maybe_current_context

        ctx = maybe_current_context()
        costs = ctx.costs if ctx is not None else DEFAULT_COSTS
        field = self.FAST_COST_FIELD if fast else self.SLOW_COST_FIELD
        work(getattr(costs, field))

    def _charge_free(self):
        from repro.hw.costs import DEFAULT_COSTS
        from repro.hw.cpu import maybe_current_context

        ctx = maybe_current_context()
        costs = ctx.costs if ctx is not None else DEFAULT_COSTS
        work(getattr(costs, self.FREE_COST_FIELD))

    def _out_of_memory(self, size):
        raise AllocationError(
            "%s out of memory: need %d bytes in region %s (live=%d bytes)"
            % (type(self).__name__, size, self.region.name,
               self.stats.bytes_live)
        )
