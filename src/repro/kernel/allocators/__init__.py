"""Memory allocators over simulated heap regions.

Unikraft's default allocator is TLSF; CubicleOS ships Doug Lea's dlmalloc,
which the paper notes "behaves better than Unikraft's TLSF allocator" in
the SQLite benchmark (Fig. 10).  Both are implemented here for real — free
lists, splitting, coalescing — over the byte ranges of a heap
:class:`~repro.hw.memory.Region`, so allocator behaviour (fragmentation,
fast/slow paths) is emergent rather than scripted.
"""

from repro.kernel.allocators.base import Allocation, Allocator
from repro.kernel.allocators.bump import BumpAllocator
from repro.kernel.allocators.dlmalloc import LeaAllocator
from repro.kernel.allocators.tlsf import TlsfAllocator

__all__ = [
    "Allocation",
    "Allocator",
    "BumpAllocator",
    "LeaAllocator",
    "TlsfAllocator",
]


def make_allocator(kind, region):
    """Factory used by the memory manager (``tlsf``, ``lea`` or ``bump``)."""
    if kind == "tlsf":
        return TlsfAllocator(region)
    if kind == "lea":
        return LeaAllocator(region)
    if kind == "bump":
        return BumpAllocator(region)
    raise ValueError("unknown allocator kind %r" % kind)
