"""Doug Lea style allocator ("Lea", dlmalloc).

The allocator CubicleOS ships.  Small requests are served from exact-size
bins (very fast pop/push); larger requests do a best-fit search over a
sorted free list with deferred coalescing.  In allocation patterns with
heavy same-size reuse — like SQLite's per-transaction cell allocations —
the exact bins outperform TLSF's two-level classes, which is the behaviour
behind the Fig. 10 footnote that CubicleOS-without-isolation beats the
Unikraft *linuxu* baseline.
"""

from __future__ import annotations

import bisect

from repro.kernel.allocators.base import MIN_BLOCK, Allocator

#: Requests up to this size use exact-size bins.
SMALL_MAX = 512


class LeaAllocator(Allocator):
    """Binned best-fit allocator with deferred coalescing."""

    def __init__(self, region):
        super().__init__(region)
        self._small_bins = {}     # size -> [offset, ...] (exact fit, LIFO)
        self._large = []          # sorted [(size, offset)] best-fit pool
        self._cursor = 0          # wilderness pointer
        self._block_sizes = {}    # offset -> size for live blocks

    # -- helpers -----------------------------------------------------------------
    def _take_wilderness(self, size):
        if self._cursor + size > self.region.size:
            return None
        offset = self._cursor
        self._cursor += size
        return offset

    # -- Allocator interface -------------------------------------------------------
    def _alloc_block(self, size):
        # 1. exact small bin: the dlmalloc fast path.
        if size <= SMALL_MAX:
            bin_ = self._small_bins.get(size)
            if bin_:
                offset = bin_.pop()
                self._block_sizes[offset] = size
                return offset, True

        # 2. best fit from the large pool.
        idx = bisect.bisect_left(self._large, (size, -1))
        if idx < len(self._large):
            found_size, offset = self._large.pop(idx)
            leftover = found_size - size
            if leftover >= MIN_BLOCK:
                bisect.insort(self._large, (leftover, offset + size))
            self._block_sizes[offset] = size
            return offset, False

        # 3. wilderness (top of heap) — cheap, pointer bump.
        offset = self._take_wilderness(size)
        if offset is not None:
            self._block_sizes[offset] = size
            return offset, size <= SMALL_MAX

        # 4. last resort: coalesce the small bins into the large pool and
        #    retry once (dlmalloc's consolidation).
        self._consolidate()
        idx = bisect.bisect_left(self._large, (size, -1))
        if idx < len(self._large):
            found_size, offset = self._large.pop(idx)
            leftover = found_size - size
            if leftover >= MIN_BLOCK:
                bisect.insort(self._large, (leftover, offset + size))
            self._block_sizes[offset] = size
            return offset, False
        self._out_of_memory(size)

    def _free_block(self, offset, size):
        self._block_sizes.pop(offset, None)
        if size <= SMALL_MAX:
            self._small_bins.setdefault(size, []).append(offset)
        else:
            bisect.insort(self._large, (size, offset))

    def _consolidate(self):
        """Merge binned blocks into the large pool, coalescing neighbours."""
        chunks = []
        for size, offsets in self._small_bins.items():
            chunks.extend((offset, size) for offset in offsets)
        self._small_bins.clear()
        chunks.extend((offset, size) for size, offset in self._large)
        self._large = []
        chunks.sort()
        merged = []
        for offset, size in chunks:
            if merged and merged[-1][0] + merged[-1][1] == offset:
                merged[-1][1] += size
            else:
                merged.append([offset, size])
        for offset, size in merged:
            bisect.insort(self._large, (size, offset))

    def free_bytes(self):
        binned = sum(
            size * len(offsets)
            for size, offsets in self._small_bins.items()
        )
        pooled = sum(size for size, _ in self._large)
        wilderness = self.region.size - self._cursor
        return binned + pooled + wilderness
