"""Two-Level Segregated Fit allocator (Masmano et al., ECRTS'04).

Unikraft's default allocator.  Free blocks are indexed by a first level
(power-of-two size class) and a second level (linear subdivision of each
class into ``2**SL_BITS`` ranges), giving O(1) malloc and free with bounded
fragmentation — the property that makes TLSF attractive for real-time
systems, and the allocator the paper's Fig. 10 CubicleOS discussion
contrasts with Doug Lea's malloc.
"""

from __future__ import annotations

from repro.kernel.allocators.base import MIN_BLOCK, Allocator

SL_BITS = 4
SL_COUNT = 1 << SL_BITS


def _fls(value):
    """Index of the highest set bit (find-last-set)."""
    return value.bit_length() - 1


def _mapping(size):
    """Map a block size to its (first-level, second-level) index."""
    fl = _fls(size)
    if fl < SL_BITS:
        return 0, size // (MIN_BLOCK // SL_COUNT or 1) % SL_COUNT
    sl = (size >> (fl - SL_BITS)) - SL_COUNT
    return fl, sl


class _Block:
    """A physical block in the heap: either free or allocated."""

    __slots__ = ("offset", "size", "free", "prev_phys", "next_phys")

    def __init__(self, offset, size):
        self.offset = offset
        self.size = size
        self.free = True
        self.prev_phys = None
        self.next_phys = None


class TlsfAllocator(Allocator):
    """A faithful (if compact) TLSF over the heap region."""

    # TLSF's O(1) bitmap walk has a slightly higher constant than a bin pop.
    FAST_COST_FIELD = "heap_alloc_fast"

    def __init__(self, region):
        super().__init__(region)
        self._free_lists = {}   # (fl, sl) -> list of free _Block
        self._by_offset = {}    # offset -> _Block (all physical blocks)
        root = _Block(0, region.size)
        self._by_offset[0] = root
        self._insert_free(root)

    # -- free-list maintenance ------------------------------------------------
    def _insert_free(self, block):
        key = _mapping(block.size)
        self._free_lists.setdefault(key, []).append(block)
        block.free = True

    def _remove_free(self, block):
        key = _mapping(block.size)
        bucket = self._free_lists.get(key)
        if bucket:
            try:
                bucket.remove(block)
            except ValueError:
                pass
            if not bucket:
                del self._free_lists[key]
        block.free = False

    def _find_suitable(self, size):
        """Find a free block >= size; returns (block, searched_far)."""
        fl, sl = _mapping(size)
        # Exact class first, then any larger class (bitmap search in real
        # TLSF; dict-scan here, with the "searched far" flag modelling the
        # slow path).
        bucket = self._free_lists.get((fl, sl))
        if bucket:
            for block in bucket:
                if block.size >= size:
                    return block, False
        best = None
        for key in sorted(self._free_lists):
            if key < (fl, sl):
                continue
            for block in self._free_lists[key]:
                if block.size >= size and (
                    best is None or block.size < best.size
                ):
                    best = block
            if best is not None:
                break
        return best, True

    # -- Allocator interface ----------------------------------------------------
    def _alloc_block(self, size):
        block, searched = self._find_suitable(size)
        if block is None:
            self._out_of_memory(size)
        self._remove_free(block)
        split = block.size - size >= MIN_BLOCK
        if split:
            remainder = _Block(block.offset + size, block.size - size)
            remainder.prev_phys = block
            remainder.next_phys = block.next_phys
            if block.next_phys is not None:
                block.next_phys.prev_phys = remainder
            block.next_phys = remainder
            block.size = size
            self._by_offset[remainder.offset] = remainder
            self._insert_free(remainder)
        fast = not searched and not split
        return block.offset, fast

    def _free_block(self, offset, size):
        block = self._by_offset[offset]
        block.free = True
        # Immediate coalescing with physical neighbours (TLSF policy).
        nxt = block.next_phys
        if nxt is not None and nxt.free:
            self._remove_free(nxt)
            block.size += nxt.size
            block.next_phys = nxt.next_phys
            if nxt.next_phys is not None:
                nxt.next_phys.prev_phys = block
            del self._by_offset[nxt.offset]
        prv = block.prev_phys
        if prv is not None and prv.free:
            self._remove_free(prv)
            prv.size += block.size
            prv.next_phys = block.next_phys
            if block.next_phys is not None:
                block.next_phys.prev_phys = prv
            del self._by_offset[block.offset]
            block = prv
        self._insert_free(block)

    def free_bytes(self):
        """Total bytes currently on free lists (for fragmentation tests)."""
        return sum(
            block.size
            for bucket in self._free_lists.values()
            for block in bucket
        )
