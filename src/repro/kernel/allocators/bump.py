"""Bump allocator.

Used for boot-time carving and for the per-VM slices of EPT shared-memory
windows, where each VM "manages its own portion of the shared memory area
to avoid the need for complex multithreaded bookkeeping" (Section 4.2).
Frees are accepted but only the most recent allocation is actually
reclaimed (stack discipline); anything else is leaked until reset.
"""

from __future__ import annotations

from repro.kernel.allocators.base import Allocator


class BumpAllocator(Allocator):
    """Pointer-bump allocation with stack-discipline reclamation."""

    FAST_COST_FIELD = "stack_alloc"
    SLOW_COST_FIELD = "stack_alloc"
    FREE_COST_FIELD = "stack_alloc"

    def __init__(self, region):
        super().__init__(region)
        self._cursor = 0

    def _alloc_block(self, size):
        if self._cursor + size > self.region.size:
            self._out_of_memory(size)
        offset = self._cursor
        self._cursor += size
        return offset, True

    def _free_block(self, offset, size):
        if offset + size == self._cursor:
            self._cursor = offset

    def reset(self):
        """Forget every allocation (cheap arena reuse)."""
        self._cursor = 0
        self._live.clear()

    @property
    def used(self):
        return self._cursor
