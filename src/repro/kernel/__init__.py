"""Unikraft-like kernel substrate.

The paper builds FlexOS on Unikraft v0.5 because its micro-library
granularity provides natural compartment boundaries.  This package is our
functional equivalent: each subsystem is a genuine implementation (the
scheduler schedules, the TCP stack moves bytes, ramfs stores files) whose
modelled work is charged to the virtual clock, and whose cross-library
calls are routed through whatever gates the built image installed.

Micro-libraries (mirroring the paper's component names):

* ``ukboot``   -- early boot code (TCB)
* ``ukalloc``  -- memory manager / allocators (TCB)
* ``uksched``  -- cooperative scheduler (TCB boundary: core primitives)
* ``ukintr``   -- first-level interrupt handling (TCB)
* ``uktime``   -- time subsystem
* ``lwip``     -- TCP/IP stack
* ``vfscore`` / ``ramfs`` -- filesystem layers
* ``newlib``   -- libc layer
"""

from repro.kernel.lib import (
    LIBRARY_REGISTRY,
    MicroLibrary,
    entrypoint,
    get_library,
    register_library,
)

__all__ = [
    "LIBRARY_REGISTRY",
    "MicroLibrary",
    "entrypoint",
    "get_library",
    "register_library",
]
