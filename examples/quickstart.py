#!/usr/bin/env python3
"""Quickstart: build a FlexOS image, boot it, and run Redis on it.

Walks the paper's workflow end to end:

1. write a safety configuration (the paper's file format);
2. run the toolchain (gate insertion, source transformation, linker
   script generation) to build an image;
3. boot the image and serve real Redis traffic over the simulated TCP
   stack, with the network stack isolated in its own MPK compartment;
4. show that isolation is real: touching lwip-private data from outside
   its compartment faults.
"""

from repro import FlexOSInstance, Machine, ProtectionFault, loads_config
from repro.apps.host import HostEndpoint
from repro.apps.redis import RedisApp, redis_benchmark_client
from repro.core.toolchain.build import build_image
from repro.hw.costs import CostModel
from repro.kernel.net.device import LinkedDevices

CONFIG = """\
compartments:
  comp1:
    mechanism: intel-mpk
    default: True
  comp2:
    mechanism: intel-mpk
    hardening: [sp, ubsan, asan]
libraries:
  - lwip: comp2
"""


def main():
    # 1. Parse the safety configuration.
    config = loads_config(CONFIG)
    print("configuration:", config)

    # 2. Build: transformation + linker script.
    image = build_image(config)
    report = image.transform_report
    print("build: %d gates inserted, %d DSS rewrites, %d static moves"
          % (report.gates_inserted, report.dss_rewrites,
             report.static_moves))
    print("linker script (first lines):")
    for line in image.linker_script.splitlines()[:6]:
        print("   ", line)

    # 3. Boot and serve Redis traffic.
    costs = CostModel.xeon_4114()
    machine = Machine(costs)
    link = LinkedDevices(costs)
    instance = FlexOSInstance(image, machine=machine,
                              net_device=link.a).boot()
    host = HostEndpoint(link.b, "10.0.0.1", costs, machine.clock)

    n_requests = 50
    with instance.run():
        server = RedisApp.make_server(instance)
        sock = instance.libc.socket(instance.net).bind(6379).listen()
        instance.sched.create_thread(
            "redis", lambda: server.serve(sock, instance.libc, n_requests),
        )
        client = instance.sched.create_thread(
            "redis-benchmark",
            lambda: redis_benchmark_client(host, "10.0.0.2", 6379,
                                           n_requests),
        )
        instance.sched.run()

    seconds = machine.clock.seconds
    print("served %d commands in %.3f ms of virtual time "
          "(%.0f kreq/s, %d domain crossings)"
          % (server.commands, seconds * 1e3,
             server.commands / seconds / 1e3,
             instance.gate_crossings()))

    # 4. Isolation is real: lwip-private data faults from outside.
    secret = instance.private_object("lwip", "pcb_table", value={})
    with instance.run():
        try:
            secret.read(instance.ctx)
            raise SystemExit("BUG: isolation did not hold!")
        except ProtectionFault as fault:
            print("protection fault as expected:", fault)


if __name__ == "__main__":
    main()
