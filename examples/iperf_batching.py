#!/usr/bin/env python3
"""iPerf batching effects (the Fig. 9 scenario).

Prints network throughput for every backend as the recv buffer grows,
plus one functional run moving real bytes through the TCP stack under
MPK isolation.
"""

from repro import FlexOSInstance, Machine, build_image
from repro.apps.host import HostEndpoint
from repro.apps.iperf import (
    FIG9_BUFFER_SIZES,
    FIG9_SETUPS,
    IperfApp,
    iperf_client,
    throughput_gbps,
)
from repro.core.config import CompartmentSpec, SafetyConfig
from repro.hw.costs import CostModel
from repro.kernel.net.device import LinkedDevices


def analytic_sweep(costs):
    print("analytic model (Gb/s):")
    header = "  %10s" + "  %16s" * len(FIG9_SETUPS)
    print(header % (("buffer",) + tuple(FIG9_SETUPS)))
    for size in FIG9_BUFFER_SIZES:
        row = [size] + [
            throughput_gbps(size, setup, costs) for setup in FIG9_SETUPS
        ]
        print(("  %10d" + "  %16.3f" * len(FIG9_SETUPS)) % tuple(row))


def functional_run(costs, total_bytes=100_000, buffer_size=4096):
    config = SafetyConfig(
        [CompartmentSpec("comp1", mechanism="intel-mpk", default=True),
         CompartmentSpec("netcomp", mechanism="intel-mpk")],
        {"lwip": "netcomp"},
    )
    machine = Machine(costs)
    link = LinkedDevices(costs)
    instance = FlexOSInstance(build_image(config), machine=machine,
                              net_device=link.a).boot()
    host = HostEndpoint(link.b, "10.0.0.1", costs, machine.clock)
    with instance.run():
        server = IperfApp.make_server(instance)
        sock = instance.libc.socket(instance.net).bind(5201).listen()
        instance.sched.create_thread(
            "server", lambda: server.serve(sock, instance.libc,
                                           total_bytes, buffer_size),
        )
        instance.sched.create_thread(
            "client", lambda: iperf_client(host, "10.0.0.2", 5201,
                                           total_bytes),
        )
        instance.sched.run()
    gbps = server.bytes_received * 8 / machine.clock.seconds / 1e9
    print("\nfunctional run (lwip isolated by MPK): moved %d bytes in "
          "%.3f ms -> %.3f Gb/s, %d recv calls, %d domain crossings"
          % (server.bytes_received, machine.clock.seconds * 1e3, gbps,
             server.recv_calls, instance.gate_crossings()))


def main():
    costs = CostModel.xeon_4114()
    analytic_sweep(costs)
    functional_run(costs)


if __name__ == "__main__":
    main()
