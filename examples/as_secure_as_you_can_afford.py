#!/usr/bin/env python3
"""Use case: "As Secure as You can Afford" (Section 7).

A service provider wants, at any moment, the *safest* configuration that
still sustains the current client load.  With FlexOS, switching safety
configurations is a rebuild, so an operator (or an autoscaler) can follow
the load curve:

* low traffic  -> run a heavily compartmentalised + hardened image;
* peak traffic -> gracefully shed defenses down to what the SLA needs.

The script sweeps a synthetic 24-hour Redis load curve; for every load
level it asks the partial-safety-ordering explorer for the safest
configuration sustaining that load, and prints the resulting schedule.
"""

from repro.apps.base import evaluate_profile
from repro.apps.redis import REDIS_GET_PROFILE
from repro.explore import explore, generate_fig6_space
from repro.explore.formal import certify
from repro.hw.costs import DEFAULT_COSTS

#: Requests/s the service must sustain, hour by hour (a day's curve).
LOAD_CURVE = [
    (0, 220_000), (3, 180_000), (6, 300_000), (9, 540_000),
    (12, 700_000), (15, 820_000), (18, 640_000), (21, 380_000),
]


def measure(layout):
    return evaluate_profile(
        REDIS_GET_PROFILE, layout, DEFAULT_COSTS, "redis",
    )["requests_per_second"]


def safety_score(layout):
    """A display-only score: compartments + hardened components."""
    return layout.n_compartments * 10 + len(layout.hardened_components())


def main():
    layouts = generate_fig6_space()
    print("%-6s %-12s %-24s %-10s %s"
          % ("hour", "load", "chosen configuration", "sustains", "posture"))

    previous = None
    for hour, load in LOAD_CURVE:
        result = explore(layouts, measure, budget=load)
        assert certify(result).valid  # never trust the traversal blindly
        if not result.recommended:
            print("%-6d %-12d (no configuration sustains this load)"
                  % (hour, load))
            continue
        # Among the safest candidates, pick the highest-scoring posture.
        best = max(result.recommended,
                   key=lambda name: safety_score(result.poset.layouts[name]))
        layout = result.poset.layouts[best]
        switch = "" if best == previous else "   <- rebuild + redeploy"
        print("%-6d %-12d %-24s %-10.0f %d comps, %d hardened%s"
              % (hour, load, best, result.measurements[best],
                 layout.n_compartments,
                 len(layout.hardened_components()), switch))
        previous = best

    print("\nUnder low load the fleet runs with maximum compartments and "
          "hardening;\nas load rises, defenses are shed only as far as the "
          "SLA requires —\nand every step is certified against the safety "
          "partial order.")


if __name__ == "__main__":
    main()
