#!/usr/bin/env python3
"""Use case: "As Secure as You can Afford" (Section 7).

A service provider wants, at any moment, the *safest* configuration that
still sustains the current client load.  With FlexOS, switching safety
configurations is a rebuild, so an operator (or an autoscaler) can follow
the load curve:

* low traffic  -> run a heavily compartmentalised + hardened image;
* peak traffic -> gracefully shed defenses down to what the SLA needs.

The script sweeps a synthetic 24-hour Redis load curve; for every load
level it asks the partial-safety-ordering explorer for the safest
configuration sustaining that load, and prints the resulting schedule.
The eight explorations share one evaluation cache: the budget changes
hour to hour, the measurements do not, so after the first hour almost
every labelled configuration is a cache hit.
"""

import tempfile

from repro.explore import (
    EvaluationCache,
    ExplorationRequest,
    ProfileEvaluator,
    explore,
    generate_fig6_space,
)
from repro.explore.formal import certify

#: Requests/s the service must sustain, hour by hour (a day's curve).
LOAD_CURVE = [
    (0, 220_000), (3, 180_000), (6, 300_000), (9, 540_000),
    (12, 700_000), (15, 820_000), (18, 640_000), (21, 380_000),
]


def safety_score(layout):
    """A display-only score: compartments + hardened components."""
    return layout.n_compartments * 10 + len(layout.hardened_components())


def main():
    layouts = generate_fig6_space()
    evaluator = ProfileEvaluator(app="redis")
    cache = EvaluationCache(tempfile.mkdtemp(prefix="flexos-explore-"))
    print("%-6s %-12s %-24s %-10s %s"
          % ("hour", "load", "chosen configuration", "sustains", "posture"))

    previous = None
    total_fresh = total_hits = 0
    for hour, load in LOAD_CURVE:
        result = explore(ExplorationRequest(
            layouts=layouts, evaluator=evaluator, budget=load,
            cache=cache,
        ))
        total_fresh += result.fresh_evaluations
        total_hits += result.cache_hits
        assert certify(result).valid  # never trust the traversal blindly
        if not result.recommended:
            print("%-6d %-12d (no configuration sustains this load)"
                  % (hour, load))
            continue
        # Among the safest candidates, pick the highest-scoring posture.
        best = max(result.recommended,
                   key=lambda name: safety_score(result.poset.layouts[name]))
        layout = result.poset.layouts[best]
        switch = "" if best == previous else "   <- rebuild + redeploy"
        print("%-6d %-12d %-24s %-10.0f %d comps, %d hardened%s"
              % (hour, load, best, result.measurements[best].value,
                 layout.n_compartments,
                 len(layout.hardened_components()), switch))
        previous = best

    print("\nUnder low load the fleet runs with maximum compartments and "
          "hardening;\nas load rises, defenses are shed only as far as the "
          "SLA requires —\nand every step is certified against the safety "
          "partial order.")
    print("evaluation cache over the day: %d fresh measurement(s), "
          "%d reused" % (total_fresh, total_hits))


if __name__ == "__main__":
    main()
