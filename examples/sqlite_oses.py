#!/usr/bin/env python3
"""SQLite across operating systems (the Fig. 10 scenario).

Runs the functional mini-SQLite on booted FlexOS instances (no isolation,
MPK3 with filesystem | time | rest, EPT2 with filesystem | rest) and
prices the same workload on the comparator OS models (Linux, SeL4/Genode,
CubicleOS).  Prints execution times for 2000 single-INSERT transactions.
"""

from repro import CompartmentSpec, FlexOSInstance, Machine, SafetyConfig, build_image
from repro.apps.sqlite import SQLITE_INSERT_PROFILE, SqliteApp, insert_benchmark
from repro.baselines import (
    CubicleOsBaseline,
    LinuxBaseline,
    Sel4GenodeBaseline,
    UnikraftBaseline,
)
from repro.hw.costs import CostModel

N_INSERTS = 2000


def flexos_config(scenario):
    if scenario == "NONE":
        return SafetyConfig(
            [CompartmentSpec("comp1", mechanism="none", default=True)], {},
        )
    if scenario == "MPK3":
        return SafetyConfig(
            [CompartmentSpec("comp1", mechanism="intel-mpk", default=True),
             CompartmentSpec("fs", mechanism="intel-mpk"),
             CompartmentSpec("time", mechanism="intel-mpk")],
            {"vfscore": "fs", "ramfs": "fs", "uktime": "time"},
        )
    if scenario == "EPT2":
        return SafetyConfig(
            [CompartmentSpec("comp1", mechanism="vm-ept", default=True),
             CompartmentSpec("fs", mechanism="vm-ept")],
            {"vfscore": "fs", "ramfs": "fs"},
        )
    raise ValueError(scenario)


def run_functional(scenario):
    """Boot the image and actually execute the INSERTs."""
    instance = FlexOSInstance(build_image(flexos_config(scenario)),
                              machine=Machine()).boot()
    start = instance.clock.seconds
    with instance.run():
        engine = SqliteApp.make_engine(instance)
        count = insert_benchmark(engine, N_INSERTS)
    assert count == N_INSERTS
    return instance.clock.seconds - start, instance.gate_crossings()


def main():
    costs = CostModel.xeon_4114()
    print("functional FlexOS runs (%d INSERTs, one txn each):" % N_INSERTS)
    base_time = None
    for scenario in ("NONE", "MPK3", "EPT2"):
        seconds, crossings = run_functional(scenario)
        if base_time is None:
            base_time = seconds
        print("  flexos %-5s %8.2f ms   %6.2fx   %d domain crossings"
              % (scenario, seconds * 1e3, seconds / base_time, crossings))

    print("\ncomparator OS models (per-operation mechanism taxes):")
    for baseline in (UnikraftBaseline("kvm"), LinuxBaseline(),
                     Sel4GenodeBaseline(), UnikraftBaseline("linuxu"),
                     CubicleOsBaseline(1), CubicleOsBaseline(2),
                     CubicleOsBaseline(3)):
        seconds = baseline.run_workload(SQLITE_INSERT_PROFILE, costs,
                                        N_INSERTS)
        print("  %-18s %8.2f ms" % (baseline.name, seconds * 1e3))

    print("\nShape to look for (Fig. 10): FlexOS-none == Unikraft, "
          "MPK3 ~ 2x, EPT2 ~ Linux, SeL4 slower, CubicleOS ~ 10x slower.")


if __name__ == "__main__":
    main()
