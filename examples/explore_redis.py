#!/usr/bin/env python3
"""Design-space exploration with partial safety ordering (Section 5/6.2).

Generates the 80-configuration Redis space of Fig. 6, builds the safety
poset of Fig. 8, labels it with measured performance using monotone
pruning, and prints the starred configurations — the safest ones that
sustain at least 500K requests/s.
"""

from repro.explore import (
    ExplorationRequest,
    ProfileEvaluator,
    explore,
    generate_fig6_space,
)

BUDGET = 500_000  # requests/s, the paper's Section 6.2 example


def main():
    layouts = generate_fig6_space()
    print("configuration space: %d configurations "
          "(5 compartmentalization strategies x 2^4 hardening)"
          % len(layouts))

    result = explore(ExplorationRequest(
        layouts=layouts,
        evaluator=ProfileEvaluator(app="redis"),
        budget=BUDGET,
    ))
    summary = result.summary()
    print("poset: %d nodes, %d Hasse edges"
          % (summary["configurations"], len(result.poset.edges())))
    print("evaluated %d configurations, pruned %d without measuring "
          "(monotone performance assumption)"
          % (summary["evaluated"], summary["pruned"]))
    print("%d configurations meet the %d kreq/s budget"
          % (summary["passing"], BUDGET // 1000))

    print("\nstarred (safest configurations meeting the budget):")
    for name in result.recommended:
        layout = result.poset.layouts[name]
        hardened = sorted(layout.hardened_components()) or ["none"]
        print("  %-22s %4.0f kreq/s   %d compartments, hardened: %s"
              % (name, result.measurements[name].value / 1e3,
                 layout.n_compartments, "+".join(hardened)))

    print("\nfor comparison, the unpruned extremes:")
    fastest = max(result.measurements,
                  key=lambda name: result.measurements[name].value)
    print("  fastest: %-18s %4.0f kreq/s"
          % (fastest, result.measurements[fastest].value / 1e3))


if __name__ == "__main__":
    main()
