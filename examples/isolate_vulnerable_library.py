#!/usr/bin/env python3
"""Use case: quickly isolate an exploitable library (Section 7).

Scenario: a heap-overflow CVE is disclosed in the image-decoding library
an application links (the paper's libopenjpg example).  No fix is
available yet.  With FlexOS, producing a binary that contains the blast
radius "takes seconds": rebuild with the vulnerable library in its own
compartment with KASan enabled.

The script runs the same exploit against three builds:

1. no isolation                 -> the secret leaks;
2. MPK compartment + KASan      -> the overflow is detected in-compartment;
3. EPT compartment (no KASan)   -> the cross-compartment read faults.
"""

from repro import (
    CompartmentSpec,
    FlexOSInstance,
    Machine,
    ProtectionFault,
    SafetyConfig,
    build_image,
)
from repro.core.hardening import Hardening, KasanShadow
from repro.errors import KasanViolation
from repro.kernel.lib import entrypoint, register_library

register_library("libjpeg", role="user", loc=1200)

SECRET = "TLS-PRIVATE-KEY"


def build(mechanism, hardening=()):
    if mechanism == "none":
        specs = [CompartmentSpec("comp1", mechanism="none", default=True)]
        assignment = {}
    else:
        specs = [
            CompartmentSpec("comp1", mechanism=mechanism, default=True),
            CompartmentSpec("quarantine", mechanism=mechanism,
                            hardening=hardening),
        ]
        assignment = {"libjpeg": "quarantine"}
    config = SafetyConfig(specs, assignment)
    return FlexOSInstance(build_image(config), machine=Machine()).boot()


def exploit(instance, kasan=None):
    """The attacker controls libjpeg and tries to read app memory."""
    secret = instance.private_object("app", "tls_key", value=SECRET)
    heap = instance.memmgr.heap_of(
        instance.image.compartment_of("libjpeg").index,
    )
    decode_buffer = heap.malloc(64)
    if kasan is not None:
        kasan.on_alloc(decode_buffer)

    @entrypoint("libjpeg")
    def decode_malicious_image():
        # Step 1: linear heap overflow past the decode buffer.
        if kasan is not None:
            kasan.check_access(decode_buffer, 0, length=65)  # 1 B past
        # Step 2: pivot to reading application memory directly.
        return secret.read(instance.ctx)

    with instance.run():
        return decode_malicious_image()


def main():
    print("CVE drops for libjpeg; the fix is weeks away.\n")

    print("build 1: no isolation (the pre-FlexOS status quo)")
    leaked = exploit(build("none"))
    print("  -> exploit succeeded, leaked: %r\n" % leaked)

    print("build 2: rebuild with libjpeg in an MPK compartment + KASan")
    try:
        exploit(build("intel-mpk", hardening=(Hardening.KASAN,)),
                kasan=KasanShadow())
        print("  -> BUG: exploit succeeded")
    except KasanViolation as violation:
        print("  -> KASan caught the overflow: %s\n" % violation)

    print("build 3: rebuild with libjpeg in its own VM (EPT backend)")
    try:
        exploit(build("vm-ept"))
        print("  -> BUG: exploit succeeded")
    except ProtectionFault as fault:
        print("  -> EPT contained the read: %s\n" % fault)

    print("Same application, three safety postures - each one rebuild "
          "away (engineering cost: a config file edit).")


if __name__ == "__main__":
    main()
